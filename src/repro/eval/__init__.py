"""Experiment drivers regenerating every table and figure of the paper's
evaluation section.  Each driver returns :class:`~repro.eval.report.Table`
objects that render to text and archive under ``benchmarks/results/``."""

from repro.eval.accuracy import (
    ACCURACY_MODEL_CONFIG,
    OUTLIER_STATS_CONFIG,
    TABLE6_SCHEMES,
    fig10_fig11_outlier_stats,
    fig12_importance,
    fig16_pruning_tradeoff,
    table6_accuracy,
)
from repro.eval.ablation import (
    ablation_chunk_length,
    ablation_equivalent_shapes,
    ablation_hot_channels,
    ablation_scheduler,
    future_hardware,
    mixed_precision_npu,
    short_prompt_crossover,
    tri_processor,
)
from repro.eval.energy_memory import fig15_energy, fig17_memory
from repro.eval.latency import (
    ABLATION_LADDER,
    TABLE3_PAPER_MS,
    TABLE3_SHAPES,
    fig1_breakdown,
    fig4_quant_npu,
    fig8_chunk_length,
    fig14_prefill_speed,
    fig18_coordination,
    fig19_ablation,
    table3_matmul,
    table5_e2e,
)
from repro.eval.report import Table, archive, results_dir
from repro.eval.service_eval import (
    EXPERIMENT_TIERS,
    service_engine_comparison,
    service_fault_recovery,
    service_golden_records,
    service_golden_snapshot,
    service_load,
    service_tier_comparison,
    two_tier_arrivals,
)
from repro.eval.summary import generate_report
from repro.eval.validation import ANCHORS, Anchor, calibration_dashboard

__all__ = [
    "Table",
    "archive",
    "results_dir",
    "table3_matmul",
    "fig1_breakdown",
    "fig4_quant_npu",
    "fig8_chunk_length",
    "fig14_prefill_speed",
    "fig15_energy",
    "fig17_memory",
    "fig18_coordination",
    "fig19_ablation",
    "table5_e2e",
    "table6_accuracy",
    "fig16_pruning_tradeoff",
    "fig10_fig11_outlier_stats",
    "fig12_importance",
    "ablation_chunk_length",
    "ablation_scheduler",
    "ablation_hot_channels",
    "ablation_equivalent_shapes",
    "future_hardware",
    "mixed_precision_npu",
    "tri_processor",
    "short_prompt_crossover",
    "calibration_dashboard",
    "service_load",
    "service_engine_comparison",
    "service_tier_comparison",
    "service_fault_recovery",
    "service_golden_records",
    "service_golden_snapshot",
    "two_tier_arrivals",
    "EXPERIMENT_TIERS",
    "generate_report",
    "Anchor",
    "ANCHORS",
    "ACCURACY_MODEL_CONFIG",
    "OUTLIER_STATS_CONFIG",
    "TABLE6_SCHEMES",
    "ABLATION_LADDER",
    "TABLE3_SHAPES",
    "TABLE3_PAPER_MS",
]
