"""Self-benchmarks of the simulation substrate itself (meta-performance).

Every other driver in ``repro.eval`` regenerates a *paper* result; this
module measures how fast the reproduction's own machinery runs — the
discrete-event simulator core (events/second), the quantized-linear hot
path (tokens/second) and the fleet harness (devices/second).  It exists
to gate the vectorized fast paths: ``Simulator`` must stay at least
:data:`SIM_SPEEDUP_FLOOR` times faster than the kept-verbatim
:class:`~repro.hw.sim.ReferenceSimulator` *while producing byte-identical
traces* — both halves are checked here, in the same run.

Wall-clock throughput numbers are machine-dependent, so they are
published under ``info`` column names (never gated by
``llmnpu bench-compare``).  The gated metrics are deterministic:

* ``speedup floor x`` — the contract value.  When the measured speedup
  clears the floor the cell is exactly :data:`SIM_SPEEDUP_FLOOR`
  (byte-stable against the committed golden); when it does not, the
  measured value is recorded so the artifact comparison fails alongside
  the benchmark's own assertion.
* task/token/device counts — pure functions of the scenario seeds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.eval.report import Table

#: Minimum vectorized-vs-reference sim-core speedup the gate enforces.
SIM_SPEEDUP_FLOOR = 3.0


def _best_of(fn: Callable[[], object],
             repeats: int) -> Tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


# -- sim core -----------------------------------------------------------------


@dataclass(frozen=True)
class SimScenario:
    """One synthetic task-graph shape for the sim-core benchmark."""

    name: str
    n_tasks: int
    dep_window: int  #: deps drawn from the preceding ``dep_window`` tasks
    max_fanin: int   #: 0..max_fanin deps per task (0 => independent)
    gated: bool      #: whether this scenario must clear the speedup floor


#: The benchmarked shapes.  ``wide``/``mixed`` stress the ready-list scan
#: that the vectorized dispatcher replaces and carry the speedup gate; a
#: pure dependency ``chain`` keeps the ready list at one entry (little for
#: vectorization to win) and is recorded for information only.
SIM_SCENARIOS: Tuple[SimScenario, ...] = (
    SimScenario("wide", n_tasks=2000, dep_window=0, max_fanin=0, gated=True),
    SimScenario("mixed", n_tasks=2000, dep_window=256, max_fanin=2,
                gated=True),
    SimScenario("chain", n_tasks=1000, dep_window=1, max_fanin=1,
                gated=False),
)


def synthetic_task_graph(scenario: SimScenario, n_procs: int = 3,
                         seed: int = 0):
    """Deterministic task graph exercising the dispatch hot path."""
    from repro.hw.sim import Task

    rng = np.random.default_rng(seed)
    procs = [f"proc{i}" for i in range(n_procs)]
    assignments = rng.integers(0, n_procs, size=scenario.n_tasks)
    durations = rng.uniform(1e-5, 1e-3, size=scenario.n_tasks)
    tasks = []
    for i in range(scenario.n_tasks):
        deps: Tuple[str, ...] = ()
        if i > 0 and scenario.max_fanin > 0 and scenario.dep_window > 0:
            fanin = int(rng.integers(0, scenario.max_fanin + 1))
            if scenario.dep_window == 1 and scenario.max_fanin == 1:
                fanin = 1  # a true chain, never a disconnected segment
            if fanin:
                lo = max(0, i - scenario.dep_window)
                picks = rng.integers(lo, i, size=fanin)
                deps = tuple(sorted({f"t{int(j)}" for j in picks}))
        tasks.append(Task(f"t{i}", procs[int(assignments[i])],
                          float(durations[i]), deps))
    return procs, tasks


def sim_core_speed(repeats: int = 3, seed: int = 0) -> Table:
    """Events/second: vectorized ``Simulator`` vs ``ReferenceSimulator``.

    Also re-verifies, on every benchmarked graph, that the two produce
    identical traces — the speedup is only meaningful if the fast path
    never changes a simulated result.
    """
    from repro.hw.sim import FifoPolicy, ReferenceSimulator, Simulator

    table = Table(
        title="sim core: vectorized dispatcher vs reference",
        columns=["scenario", "tasks", "ref keps", "fast keps",
                 "measured x", "speedup floor x"],
    )
    for scenario in SIM_SCENARIOS:
        procs, tasks = synthetic_task_graph(scenario, seed=seed)
        ref_s, ref_trace = _best_of(
            lambda: ReferenceSimulator(procs).run(tasks, FifoPolicy()),
            repeats,
        )
        fast_s, fast_trace = _best_of(
            lambda: Simulator(procs).run(tasks, FifoPolicy()),
            repeats,
        )
        if fast_trace.events != ref_trace.events:
            raise ReproError(
                f"sim scenario {scenario.name!r}: vectorized trace "
                f"diverged from the reference simulator"
            )
        speedup = ref_s / fast_s
        gate: Optional[float] = None
        if scenario.gated:
            gate = (SIM_SPEEDUP_FLOOR if speedup >= SIM_SPEEDUP_FLOOR
                    else speedup)
        table.add_row(
            scenario.name, scenario.n_tasks,
            len(tasks) / ref_s / 1e3, len(tasks) / fast_s / 1e3,
            speedup, gate,
        )
    table.add_note(
        "keps = thousand simulated task events per wall second "
        "(machine-dependent, informational)"
    )
    table.add_note(
        f"'speedup floor x' is the gated contract: exactly "
        f"{SIM_SPEEDUP_FLOOR:g} while the measured speedup clears the "
        f"floor; 'chain' is ungated (ready list of one)"
    )
    return table


def min_gated_sim_speedup(table: Table) -> float:
    """Smallest measured speedup across the gated sim scenarios."""
    speedups = [row[4] for row, scenario in zip(table.rows, SIM_SCENARIOS)
                if scenario.gated]
    if not speedups:
        raise ReproError("no gated sim scenarios in table")
    return float(min(speedups))


# -- quant hot path -----------------------------------------------------------


def quant_speed(tokens: int = 2048, width: int = 512, out_features: int = 512,
                repeats: int = 3, seed: int = 0) -> Table:
    """Tokens/second through the shadow-outlier quantized linear.

    Times the full Eq. 1 split — INT8 NPU half plus CPU shadow
    compensation plus the (vectorized) hot-channel accounting — and the
    shadow-disabled NPU-only path for contrast.
    """
    from repro.quant.shadow import ShadowOutlierLinear

    rng = np.random.default_rng(seed)
    weight = rng.normal(0.0, 0.02, size=(out_features, width)).astype(
        np.float32
    )
    x = rng.normal(0.0, 1.0, size=(tokens, width)).astype(np.float32)
    hot = np.sort(rng.choice(width, size=max(4, width // 64), replace=False))
    x[:, hot] *= 8.0  # a few loud channels, as calibration would find
    act_scale = float(np.percentile(np.abs(x).max(axis=0), 99.0)) / 127.0

    table = Table(
        title="quant hot path: shadow-outlier linear",
        columns=["path", "tokens", "width", "outlier cols", "ktok rate"],
    )
    for label, enabled in (("shadow", True), ("npu-only", False)):
        layer = ShadowOutlierLinear(
            weight, act_scale, shadow_enabled=enabled,
            hot_channels=hot if enabled else None, name=f"bench-{label}",
        )
        wall_s, _ = _best_of(lambda: layer(x), repeats)
        table.add_row(
            label, tokens, width,
            int(layer.outlier_columns(x).size),
            tokens / wall_s / 1e3,
        )
    table.add_note(
        "ktok rate = thousand activation rows per wall second "
        "(machine-dependent, informational); token/width/outlier "
        "counts are deterministic"
    )
    return table


# -- fleet harness ------------------------------------------------------------


def fleet_speed(n_devices: int = 4, seed: int = 42,
                workers: int = 1) -> Table:
    """Devices/second through the full fleet device pipeline.

    Each device runs the seeded faulty workload plus the batched step
    probe — the unit of work the 1000-device fleet fans out — so this
    rate directly predicts large-fleet wall-clock.
    """
    from repro.eval.fleet import (
        FLEET_SLOS,
        _device_payloads,
        default_fleet,
    )
    from repro.obs import DEFAULT_RULES

    specs = default_fleet(n_devices=n_devices, seed=seed)
    wall_s, payloads = _best_of(
        lambda: _device_payloads(specs, FLEET_SLOS, DEFAULT_RULES,
                                 workers=workers),
        repeats=1,
    )
    table = Table(
        title="fleet harness: devices per second",
        columns=["fleet", "devices", "workers", "total steps",
                 "device rate"],
    )
    table.add_row(
        "splitmix", n_devices, workers,
        sum(p["n_steps"] for p in payloads),
        n_devices / wall_s,
    )
    table.add_note(
        "device rate = devices fully simulated per wall second "
        "(machine-dependent, informational); step counts are "
        "deterministic"
    )
    return table


def sim_speed_report(repeats: int = 3) -> Tuple[Table, Table, Table]:
    """All three self-benchmarks, ready for one ``BENCH_sim_speed`` artifact."""
    return (sim_core_speed(repeats=repeats), quant_speed(repeats=repeats),
            fleet_speed())
