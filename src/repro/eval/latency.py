"""Latency experiment drivers: Table 3, Figures 1, 4, 8, 14, 18, 19 and
Table 5 of the paper's evaluation."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines import BASELINES, make_baseline
from repro.core import EngineConfig, LlmNpuEngine
from repro.eval.report import Table
from repro.hw import (
    DType,
    MatMulShape,
    matmul_latency,
    per_group_matmul_latency,
)
from repro.hw.soc import SocSpec, get_device
from repro.model.config import ModelConfig, get_model_config
from repro.workloads.datasets import WORKLOADS, geomean, sample_workload

#: Table 3's published MatMul shapes and measurements (ms), Redmi K70 Pro.
TABLE3_SHAPES = [
    (64, 2048, 2048), (64, 2048, 8192), (64, 2048, 11008),
    (32, 4096, 4096), (32, 4096, 8192), (32, 4096, 11008),
]
TABLE3_PAPER_MS = {
    "NPU INT8": [0.9, 1.5, 2.0, 1.7, 2.9, 4.1],
    "CPU INT8": [4.2, 6.8, 11.6, 7.5, 13.1, 19.6],
    "GPU FP16": [1.7, 4.8, 6.9, 3.1, 7.7, 10.4],
    "NPU FP16": [252, 986, 1207, 1054, 2009, 3112],
}


def _device(device) -> SocSpec:
    return get_device(device) if isinstance(device, str) else device


def _model(model) -> ModelConfig:
    return get_model_config(model) if isinstance(model, str) else model


def table3_matmul(device="Redmi K70 Pro") -> Table:
    """Regenerate Table 3: MatMul latency per engine and shape."""
    dev = _device(device)
    engines = {
        "NPU INT8": (dev.npu, DType.INT8),
        "CPU INT8": (dev.cpu, DType.INT8),
        "GPU FP16": (dev.gpu, DType.FP16),
        "NPU FP16": (dev.npu, DType.FP16),
    }
    table = Table(
        title=f"Table 3 — MatMul latency (ms) on {dev.name}",
        columns=["engine"] + [f"{m}x{k}x{n}" for m, k, n in TABLE3_SHAPES]
        + ["max err vs paper"],
    )
    for name, (proc, dtype) in engines.items():
        preds = [
            matmul_latency(proc, MatMulShape(*shape), dtype) * 1e3
            for shape in TABLE3_SHAPES
        ]
        errs = [
            abs(p - a) / a
            for p, a in zip(preds, TABLE3_PAPER_MS[name])
        ]
        table.add_row(name, *preds, f"{max(errs):.0%}")
    table.add_note("paper-measured values: "
                   + "; ".join(f"{k}: {v}" for k, v in TABLE3_PAPER_MS.items()))
    return table


def fig14_prefill_speed(
    models: Sequence = ("Qwen1.5-1.8B", "Gemma-2B", "LlaMA-2-7B"),
    devices: Sequence = ("Redmi K70 Pro", "Redmi K60 Pro"),
    prompt_lens: Sequence[int] = (64, 256, 1024),
) -> Table:
    """Regenerate Figure 14: prefill speed (tokens/s) per engine."""
    table = Table(
        title="Figure 14 — prefill speed (tokens/s)",
        columns=["device", "model", "engine"]
        + [f"prompt={p}" for p in prompt_lens],
    )
    for device in devices:
        dev = _device(device)
        for model in models:
            cfg = _model(model)
            engines = {"llm.npu": LlmNpuEngine(cfg, dev)}
            for name in BASELINES:
                engines[name] = make_baseline(name, cfg, dev)
            for name, engine in engines.items():
                speeds = [
                    engine.prefill(p).tokens_per_s for p in prompt_lens
                ]
                table.add_row(dev.name, cfg.name, name, *speeds)
    return table


def fig1_breakdown(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    workload_names: Sequence[str] = ("ui_automation", "email_reply",
                                     "chat_summary"),
    n_samples: int = 5,
) -> Table:
    """Regenerate Figure 1: prefill share of end-to-end latency.

    CPU rows use llama.cpp (as the paper does), GPU rows use TFLite.
    """
    cfg = _model(model)
    dev = _device(device)
    table = Table(
        title="Figure 1 — prefill share of end-to-end latency",
        columns=["engine", "workload", "prefill s", "decode s",
                 "prefill share"],
    )
    for engine_name in ("llama.cpp-CPU", "TFLite-GPU"):
        engine = make_baseline(engine_name, cfg, dev)
        for wname in workload_names:
            spec = WORKLOADS[wname]
            prefill_total = decode_total = 0.0
            for sample in sample_workload(spec, n_samples):
                report = engine.infer(sample.prompt_tokens,
                                      sample.output_tokens)
                prefill_total += report.prefill_latency_s
                decode_total += report.decode_latency_s
            share = prefill_total / (prefill_total + decode_total)
            table.add_row(engine_name, wname, prefill_total / n_samples,
                          decode_total / n_samples, f"{share:.1%}")
    return table


def fig4_quant_npu(
    device="Redmi K70 Pro",
    shape=(256, 2048, 2048),
) -> Table:
    """Regenerate Figure 4's latency half: quantization layout vs NPU
    MatMul latency (per-tensor vs K-Quant/AWQ-style per-group)."""
    dev = _device(device)
    m, k, n = shape
    per_tensor = matmul_latency(dev.npu, MatMulShape(m, k, n), DType.INT8)
    table = Table(
        title=f"Figure 4 — NPU MatMul latency by quantization layout "
              f"({m}x{k}x{n}) on {dev.name}",
        columns=["layout", "latency ms", "overhead vs per-tensor"],
    )
    table.add_row("per-tensor (SmoothQuant/llm.npu)", per_tensor * 1e3, "1.0x")
    for name, group in (("K-Quant (g=32)", 32), ("AWQ-style (g=128)", 128)):
        latency = per_group_matmul_latency(
            dev.npu, MatMulShape(m, k, n), group, DType.INT8
        )
        table.add_row(name, latency * 1e3, f"{latency / per_tensor:.1f}x")
    table.add_note("paper measures 8.1-10.7x for per-group layouts")
    return table


def fig8_chunk_length(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    chunk_lens: Sequence[int] = (32, 64, 128, 256, 512, 1024),
) -> Table:
    """Regenerate Figure 8: per-token latency of QKV linears and FFN
    against chunk length."""
    cfg = _model(model)
    dev = _device(device)
    table = Table(
        title=f"Figure 8 — per-token NPU latency (us/token), {cfg.name}",
        columns=["chunk length", "QKV linears", "FFN"],
    )
    for chunk in chunk_lens:
        qkv = (
            matmul_latency(dev.npu, MatMulShape(chunk, cfg.hidden_size,
                                                cfg.q_dim), DType.INT8)
            + 2 * matmul_latency(dev.npu, MatMulShape(chunk, cfg.hidden_size,
                                                      cfg.kv_dim), DType.INT8)
        )
        n_up = 2 if cfg.gated_ffn else 1
        ffn = (
            n_up * matmul_latency(dev.npu, MatMulShape(chunk, cfg.hidden_size,
                                                       cfg.ffn_hidden),
                                  DType.INT8)
            + matmul_latency(dev.npu, MatMulShape(chunk, cfg.ffn_hidden,
                                                  cfg.hidden_size),
                             DType.INT8)
        )
        table.add_row(chunk, qkv / chunk * 1e6, ffn / chunk * 1e6)
    table.add_note("llm.npu picks 256: diminishing returns beyond it while "
                   "intra-chunk padding waste keeps growing")
    return table


def table5_e2e(
    models: Sequence = ("Qwen1.5-1.8B", "Gemma-2B", "LlaMA-2-7B"),
    device="Redmi K70 Pro",
    workload_names: Optional[Sequence[str]] = None,
    n_samples: int = 3,
) -> Table:
    """Regenerate Table 5: end-to-end latency per workload and engine."""
    dev = _device(device)
    workload_names = (tuple(WORKLOADS) if workload_names is None
                      else tuple(workload_names))
    table = Table(
        title=f"Table 5 — end-to-end latency (s) on {dev.name} "
              "(prefill + decode)",
        columns=["workload", "model", "engine", "e2e s", "prefill s",
                 "decode s", "speedup vs engine"],
    )
    for wname in workload_names:
        spec = WORKLOADS[wname]
        samples = sample_workload(spec, n_samples)
        for model in models:
            cfg = _model(model)
            ours = LlmNpuEngine(cfg, dev)
            ours_reports = [
                ours.infer(s.prompt_tokens, s.output_tokens)
                for s in samples
            ]
            ours_e2e = [r.e2e_latency_s for r in ours_reports]
            table.add_row(
                wname, cfg.name, "llm.npu",
                sum(ours_e2e) / len(ours_e2e),
                sum(r.prefill_latency_s for r in ours_reports) / n_samples,
                sum(r.decode_latency_s for r in ours_reports) / n_samples,
                "1.0x",
            )
            for bname in BASELINES:
                engine = make_baseline(bname, cfg, dev)
                reports = [
                    engine.infer(s.prompt_tokens, s.output_tokens)
                    for s in samples
                ]
                speedups = [
                    r.e2e_latency_s / o for r, o in zip(reports, ours_e2e)
                ]
                table.add_row(
                    wname, cfg.name, bname,
                    sum(r.e2e_latency_s for r in reports) / n_samples,
                    sum(r.prefill_latency_s for r in reports) / n_samples,
                    sum(r.decode_latency_s for r in reports) / n_samples,
                    f"{geomean(speedups):.1f}x",
                )
    return table


def fig18_coordination(
    model="Gemma-2B",
    device="Redmi K70 Pro",
    prompt_lens: Sequence[int] = (256, 512, 1024),
    output_tokens: int = 16,
) -> Table:
    """Regenerate Figure 18: CPU-NPU vs GPU-NPU coordination."""
    cfg = _model(model)
    dev = _device(device)
    table = Table(
        title=f"Figure 18 — CPU-NPU vs GPU-NPU coordination, {cfg.name}",
        columns=["coordination", "prompt", "prefill tok/s", "decode s",
                 "e2e s"],
    )
    for backend in ("cpu", "gpu"):
        engine = LlmNpuEngine(cfg, dev, EngineConfig(
            float_backend=backend, decode_backend=backend,
        ))
        for p in prompt_lens:
            report = engine.infer(p, output_tokens)
            table.add_row(
                f"{backend.upper()}-NPU", p,
                report.prefill_tokens_per_s,
                report.decode_latency_s,
                report.e2e_latency_s,
            )
    table.add_note("paper: coordination choice barely moves prefill; GPU "
                   "decode lowers end-to-end latency")
    return table


#: The Fig. 19 ablation ladder configurations, in presentation order.
ABLATION_LADDER = (
    ("naive NPU", dict(chunking=False, quant_mode="per-group",
                       policy="in-order", equivalent_shapes=False)),
    ("+chunk", dict(chunking=True, quant_mode="per-group",
                    policy="in-order", equivalent_shapes=False)),
    ("+outlier", dict(chunking=True, quant_mode="shadow",
                      policy="in-order", equivalent_shapes=False)),
    ("+OOE (llm.npu)", dict(chunking=True, quant_mode="shadow",
                            policy="ooo", equivalent_shapes=False)),
)


def fig19_ablation(
    models: Sequence = ("Qwen1.5-1.8B", "Gemma-2B", "LlaMA-2-7B"),
    device="Redmi K70 Pro",
    prompt_len: int = 512,
) -> Table:
    """Regenerate Figure 19: the technique-by-technique ablation."""
    dev = _device(device)
    table = Table(
        title=f"Figure 19 — ablation, prefill speed (tokens/s), "
              f"prompt={prompt_len}",
        columns=["model", "llama.cpp-CPU"]
        + [name for name, _ in ABLATION_LADDER],
    )
    for model in models:
        cfg = _model(model)
        cpu_speed = make_baseline(
            "llama.cpp-CPU", cfg, dev
        ).prefill(prompt_len).tokens_per_s
        speeds = []
        for _, overrides in ABLATION_LADDER:
            engine = LlmNpuEngine(cfg, dev, EngineConfig(**overrides))
            speeds.append(engine.prefill(prompt_len).tokens_per_s)
        table.add_row(cfg.name, cpu_speed, *speeds)
    table.add_note("paper: chunk-sharing 1.46-5.09x, shadow outlier "
                   "3.91-8.68x, out-of-order 18-44% latency reduction")
    return table
