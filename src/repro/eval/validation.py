"""Calibration dashboard: every paper anchor, verified programmatically.

The simulator and synthetic substrates are calibrated against specific
numbers the paper publishes.  This driver re-measures each anchor and
reports paper-value vs measured with a PASS / NEAR / FAIL status, giving
one place to see whether a change to the cost models silently broke a
calibration point.  (The benchmark suite asserts the same properties
piecemeal; this is the consolidated view.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.baselines import make_baseline
from repro.core import LlmNpuEngine
from repro.eval.report import Table
from repro.hw import (
    DType,
    MatMulShape,
    NpuGraphCostModel,
    REDMI_K70_PRO,
    graph_ops_for_model,
    matmul_latency,
    per_group_matmul_latency,
)
from repro.model import GEMMA_2B, QWEN15_18B


@dataclass(frozen=True)
class Anchor:
    """One calibration point: what the paper says vs what we measure."""

    name: str
    paper: str
    measure: Callable[[], float]
    lo: float
    hi: float
    near_margin: float = 0.25  # relative widening for NEAR status
    unit: str = ""

    def evaluate(self) -> Tuple[float, str]:
        value = self.measure()
        if self.lo <= value <= self.hi:
            return value, "PASS"
        span = self.hi - self.lo
        slack = max(abs(self.lo), abs(self.hi)) * self.near_margin
        if self.lo - slack <= value <= self.hi + slack + span * 0:
            return value, "NEAR"
        return value, "FAIL"


def _table3_max_error() -> float:
    shapes = [(64, 2048, 2048), (64, 2048, 8192), (64, 2048, 11008),
              (32, 4096, 4096), (32, 4096, 8192), (32, 4096, 11008)]
    paper = {
        ("npu", DType.INT8): [0.9, 1.5, 2.0, 1.7, 2.9, 4.1],
        ("cpu", DType.INT8): [4.2, 6.8, 11.6, 7.5, 13.1, 19.6],
        ("gpu", DType.FP16): [1.7, 4.8, 6.9, 3.1, 7.7, 10.4],
        ("npu", DType.FP16): [252, 986, 1207, 1054, 2009, 3112],
    }
    worst = 0.0
    for (proc, dtype), values in paper.items():
        for shape, measured_ms in zip(shapes, values):
            pred = matmul_latency(REDMI_K70_PRO.processors[proc],
                                  MatMulShape(*shape), dtype) * 1e3
            worst = max(worst, abs(pred - measured_ms) / measured_ms)
    return worst * 100.0


def _per_group_penalty() -> float:
    shape = MatMulShape(256, 2048, 2048)
    pt = matmul_latency(REDMI_K70_PRO.npu, shape, DType.INT8)
    pg = per_group_matmul_latency(REDMI_K70_PRO.npu, shape, 32, DType.INT8)
    return pg / pt


def _gemma_build_ms() -> float:
    return NpuGraphCostModel().build_s(
        graph_ops_for_model(GEMMA_2B.n_layers)
    ) * 1e3


def _gemma_optimize_s() -> float:
    return NpuGraphCostModel().optimize_s(
        graph_ops_for_model(GEMMA_2B.n_layers)
    )


def _qwen_shared_subgraphs() -> float:
    engine = LlmNpuEngine(QWEN15_18B, REDMI_K70_PRO)
    return float(engine.graph.sharing_stats().shared_subgraphs)


def _npu_to_cpu_chunk_ratio() -> float:
    engine = LlmNpuEngine(QWEN15_18B, REDMI_K70_PRO)
    plan = engine.graph.plan_for_chunk(0)
    return plan.npu_latency_s() / plan.float_latency_s()


def _inorder_bubble_pct() -> float:
    engine = LlmNpuEngine.build(QWEN15_18B, REDMI_K70_PRO,
                                policy="in-order")
    return engine.prefill(1024).npu_bubble_rate * 100.0


def _ooe_reduction_pct() -> float:
    inorder = LlmNpuEngine.build(QWEN15_18B, REDMI_K70_PRO,
                                 policy="in-order").prefill(1024).latency_s
    ooo = LlmNpuEngine.build(QWEN15_18B, REDMI_K70_PRO,
                             policy="ooo").prefill(1024).latency_s
    return (1.0 - ooo / inorder) * 100.0


def _sync_share_pct() -> float:
    engine = LlmNpuEngine.build(QWEN15_18B, REDMI_K70_PRO,
                                pruning_rate=0.0)
    report = engine.prefill(512)
    sync = report.trace.busy_by_tag().get("sync", 0.0)
    return sync / report.latency_s * 100.0


def _llama_cpp_tok_s() -> float:
    engine = make_baseline("llama.cpp-CPU", QWEN15_18B, REDMI_K70_PRO)
    return engine.prefill(1024).tokens_per_s


def _llm_npu_tok_s() -> float:
    return LlmNpuEngine(
        QWEN15_18B, REDMI_K70_PRO
    ).prefill(1024).tokens_per_s


def _equivalent_shape_kernel_gain() -> float:
    from repro.graph.shapes import equivalent_shape_gain
    return equivalent_shape_gain(1024)


#: The calibration anchors, each with the paper's value/range.
ANCHORS: List[Anchor] = [
    Anchor("Table 3 worst-case fit error", "<= ~20% (fitted)",
           _table3_max_error, 0.0, 25.0, unit="%"),
    Anchor("per-group NPU penalty (g=32)", "8.1-10.7x",
           _per_group_penalty, 7.0, 12.0, unit="x"),
    Anchor("Gemma-2B graph build", "360 ms",
           _gemma_build_ms, 320.0, 400.0, unit="ms"),
    Anchor("Gemma-2B graph optimize", "11.54 s",
           _gemma_optimize_s, 10.0, 13.0, unit="s"),
    Anchor("Qwen shared subgraphs", "120 of 144",
           _qwen_shared_subgraphs, 120.0, 120.0, near_margin=0.0),
    Anchor("NPU/CPU per-chunk work ratio", "~2x (§3.4)",
           _npu_to_cpu_chunk_ratio, 1.5, 3.0, unit="x"),
    Anchor("in-order NPU bubble rate", "~37% (§3.4)",
           _inorder_bubble_pct, 30.0, 55.0, unit="%"),
    Anchor("out-of-order latency reduction", "18-44%",
           _ooe_reduction_pct, 18.0, 44.0, unit="%"),
    Anchor("sync share at zero pruning", "29.7% (§3.3)",
           _sync_share_pct, 18.0, 35.0, unit="%"),
    Anchor("llama.cpp Qwen prefill", "~59 tok/s (Table 5)",
           _llama_cpp_tok_s, 47.0, 71.0, unit="tok/s"),
    Anchor("llm.npu Qwen prefill @1024", ">1000 tok/s (abstract)",
           _llm_npu_tok_s, 900.0, 2000.0, unit="tok/s"),
    Anchor("equivalent-shape kernel gain", "1.62x (§4)",
           _equivalent_shape_kernel_gain, 1.55, 1.70, unit="x"),
]


def calibration_dashboard(
    anchors: Optional[List[Anchor]] = None,
) -> Table:
    """Measure every anchor; returns the consolidated dashboard table."""
    anchors = anchors if anchors is not None else ANCHORS
    table = Table(
        title="Calibration dashboard — paper anchors vs this build",
        columns=["anchor", "paper", "measured", "target range", "status"],
    )
    for anchor in anchors:
        value, status = anchor.evaluate()
        table.add_row(
            anchor.name,
            anchor.paper,
            f"{value:,.2f}{anchor.unit}",
            f"[{anchor.lo:g}, {anchor.hi:g}]{anchor.unit}",
            status,
        )
    n_fail = sum(1 for row in table.rows if row[-1] == "FAIL")
    table.add_note(f"{len(table.rows) - n_fail}/{len(table.rows)} anchors "
                   "within range")
    return table
