"""Energy (Figure 15) and memory (Figure 17) experiment drivers."""

from __future__ import annotations

from typing import Sequence

from repro.baselines import make_baseline
from repro.core import LlmNpuEngine
from repro.eval.report import Table
from repro.hw.soc import get_device
from repro.model.config import get_model_config


def fig15_energy(
    models: Sequence = ("Qwen1.5-1.8B", "Gemma-2B", "LlaMA-2-7B"),
    device="Redmi K60 Pro",
    prompt_lens: Sequence[int] = (64, 1024),
) -> Table:
    """Regenerate Figure 15: prefill energy per engine.

    The paper measures energy on the Redmi K60 Pro (the rootable device)
    and excludes PowerInfer-V2 (no published energy data).
    """
    dev = get_device(device) if isinstance(device, str) else device
    engines = ("llm.npu", "llama.cpp-CPU", "MLC-GPU", "TFLite-GPU")
    table = Table(
        title=f"Figure 15 — prefill energy (J) on {dev.name}",
        columns=["model", "engine"]
        + [f"prompt={p}" for p in prompt_lens]
        + [f"savings @{prompt_lens[-1]}"],
    )
    for model in models:
        cfg = get_model_config(model) if isinstance(model, str) else model
        rows = {}
        for name in engines:
            if name == "llm.npu":
                engine = LlmNpuEngine(cfg, dev)
            else:
                engine = make_baseline(name, cfg, dev)
            rows[name] = [
                engine.infer(p, 0).extras["prefill_energy_j"]
                for p in prompt_lens
            ]
        ours_last = rows["llm.npu"][-1]
        for name in engines:
            saving = (f"{rows[name][-1] / ours_last:.1f}x"
                      if name != "llm.npu" else "1.0x")
            table.add_row(cfg.name, name, *rows[name], saving)
    table.add_note("paper bands at 1024 tokens: llama.cpp 35.6-59.5x, "
                   "MLC 35.2-59.3x, TFLite 1.85-4.32x")
    return table


def fig17_memory(
    models: Sequence = ("Qwen1.5-1.8B", "Gemma-2B", "Phi-2-2.7B"),
    device="Redmi K60 Pro",
    prompt_len: int = 512,
) -> Table:
    """Regenerate Figure 17: memory consumption vs INT8 baselines."""
    dev = get_device(device) if isinstance(device, str) else device
    table = Table(
        title=f"Figure 17 — memory (GiB) at prompt={prompt_len} on "
              f"{dev.name}",
        columns=["model", "engine", "total GiB", "shadow weights GiB",
                 "shadow share"],
    )
    gib = 1024 ** 3
    for model in models:
        cfg = get_model_config(model) if isinstance(model, str) else model
        ours = LlmNpuEngine(cfg, dev)
        total = ours.memory_bytes(prompt_len)
        shadow = ours.shadow_weight_bytes()
        table.add_row(cfg.name, "llm.npu", total / gib, shadow / gib,
                      f"{shadow / total:.2%}")
        for name in ("llama.cpp-CPU", "TFLite-GPU"):
            engine = make_baseline(name, cfg, dev)
            base_total = engine.memory_bytes(prompt_len)
            table.add_row(cfg.name, name, base_total / gib, 0.0, "0%")
    table.add_note("paper: llm.npu uses up to 1.32x the baselines (MLLM/QNN "
                   "per-operator buffers); shadow weights are 0.6-1% of total")
    return table
