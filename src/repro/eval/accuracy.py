"""Accuracy experiment drivers: Table 6, Figures 10, 11, 12 and 16.

These run *real quantization numerics* on synthetic-weight models (see
``repro.model.synthetic`` for why the synthetic outlier structure makes the
measurements meaningful) and, for Fig. 16's speed axis, combine them with
the simulator's prefill throughput at each pruning rate.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core import EngineConfig, LlmNpuEngine
from repro.eval.report import Table
from repro.hw.soc import get_device
from repro.model.config import tiny_config
from repro.model.synthetic import OutlierSpec, build_synthetic_model
from repro.quant import quantize_model
from repro.quant.observers import calibrate
from repro.workloads.benchmarks_acc import (
    ACCURACY_BENCHMARKS,
    build_items,
    evaluate,
    model_answers,
)
from repro.workloads.corpus import calibration_corpus

#: The quantization substrate: deep enough that the paper's default 85%
#: pruning keeps only the (important) first and last layers.
ACCURACY_MODEL_CONFIG = tiny_config(
    name="synthetic-16L",
    n_layers=16,
    hidden_size=96,
    n_heads=4,
    ffn_hidden=256,
    vocab_size=199,
    max_context=256,
)

#: Table 6's comparison columns, in presentation order.
TABLE6_SCHEMES = ("fp16", "smoothquant", "llm.int8", "per-group", "llm.npu")


def _accuracy_model(seed: int = 7):
    return build_synthetic_model(ACCURACY_MODEL_CONFIG, seed=seed)


def table6_accuracy(
    schemes: Sequence[str] = TABLE6_SCHEMES,
    benchmarks: Optional[Sequence[str]] = None,
    n_items_scale: float = 1.0,
    seed: int = 7,
    pruning_rate: float = 0.85,
    with_cross_entropy: bool = False,
) -> Table:
    """Regenerate Table 6: teacher agreement per scheme per benchmark.

    The reference answers come from the FP32 model (the teacher); every
    scheme — including the FP16 column — is scored against it, mirroring
    how the paper's "Degrad." column compares methods to full precision.
    """
    benchmarks = (tuple(ACCURACY_BENCHMARKS) if benchmarks is None
                  else tuple(benchmarks))
    config = ACCURACY_MODEL_CONFIG
    reference = _accuracy_model(seed)
    corpus = calibration_corpus(config, seed=seed)

    suites = {}
    for name in benchmarks:
        bench = ACCURACY_BENCHMARKS[name]
        if n_items_scale != 1.0:
            import dataclasses
            bench = dataclasses.replace(
                bench, n_items=max(4, int(bench.n_items * n_items_scale))
            )
        items = build_items(bench, config)
        suites[name] = (bench, items,
                        model_answers(reference, bench, items))

    calib = calibrate(reference, corpus,
                      channel_percentile=97.9)  # auto value for width 96

    columns = ["scheme"] + list(benchmarks) + ["mean"]
    if with_cross_entropy:
        columns.append("teacher CE")
    table = Table(
        title="Table 6 — teacher agreement vs FP32 reference "
              f"({config.name} substrate)",
        columns=columns,
    )
    ce_probe = None
    if with_cross_entropy:
        probe_rng = np.random.default_rng(seed + 900)
        ce_probe = probe_rng.integers(4, config.vocab_size, size=64)
        ce_ref = reference.prefill(ce_probe)
    for scheme in schemes:
        model = _accuracy_model(seed)
        if scheme == "fp16":
            quantize_model(model, "fp16")
        else:
            quantize_model(model, scheme, calibration=calib,
                           pruning_rate=pruning_rate)
        scores = [
            evaluate(model, ref_answers, bench, items)
            for (bench, items, ref_answers) in suites.values()
        ]
        row = [scheme, *scores, float(np.mean(scores))]
        if with_cross_entropy:
            from repro.quant.metrics import teacher_cross_entropy
            row.append(teacher_cross_entropy(ce_ref,
                                             model.prefill(ce_probe)))
        table.add_row(*row)
    table.add_note("paper's ordering: fp16 ~ llm.int8 >= llm.npu(85% "
                   "pruned) > per-group (K-Quant) > smoothquant > naive "
                   "per-tensor")
    return table


def fig16_pruning_tradeoff(
    rates: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.85, 0.95, 1.0),
    speed_model: str = "Qwen1.5-1.8B",
    device: str = "Redmi K70 Pro",
    prompt_len: int = 512,
    benchmarks: Sequence[str] = ("lambada", "hellaswag"),
    n_items_scale: float = 1.0,
    seed: int = 7,
) -> Table:
    """Regenerate Figure 16: accuracy vs generation speed across outlier
    pruning rates.

    Accuracy comes from the quantization substrate; speed from simulating
    the Qwen-class engine with that pruning rate (more shadow layers =
    more CPU work and sync on the critical path).
    """
    config = ACCURACY_MODEL_CONFIG
    reference = _accuracy_model(seed)
    corpus = calibration_corpus(config, seed=seed)
    calib = calibrate(reference, corpus, channel_percentile=97.9)

    suites = {}
    for name in benchmarks:
        bench = ACCURACY_BENCHMARKS[name]
        if n_items_scale != 1.0:
            import dataclasses
            bench = dataclasses.replace(
                bench, n_items=max(4, int(bench.n_items * n_items_scale))
            )
        items = build_items(bench, config)
        suites[name] = (bench, items,
                        model_answers(reference, bench, items))

    dev = get_device(device)
    from repro.model.config import get_model_config
    speed_cfg = get_model_config(speed_model)

    table = Table(
        title="Figure 16 — accuracy vs prefill speed across pruning rates",
        columns=["pruning rate"] + [f"acc:{b}" for b in benchmarks]
        + ["prefill tok/s"],
    )
    for rate in rates:
        model = _accuracy_model(seed)
        quantize_model(model, "llm.npu", calibration=calib,
                       pruning_rate=rate)
        scores = [
            evaluate(model, ref_answers, bench, items)
            for (bench, items, ref_answers) in suites.values()
        ]
        engine = LlmNpuEngine(speed_cfg, dev,
                              EngineConfig(pruning_rate=rate))
        speed = engine.prefill(prompt_len).tokens_per_s
        table.add_row(f"{rate:.0%}", *scores, speed)
    table.add_note("paper: speed rises and accuracy falls with the pruning "
                   "rate; accuracy collapses as pruning approaches 100%")
    return table


#: Wider substrate for channel-statistics measurements: channel fractions
#: need a realistic channel count to be comparable to the paper's.
OUTLIER_STATS_CONFIG = tiny_config(
    name="synthetic-wide",
    n_layers=4,
    hidden_size=1024,
    n_heads=8,
    ffn_hidden=2048,
    vocab_size=999,
    max_context=256,
)


def fig10_fig11_outlier_stats(
    seed: int = 3,
    n_sequences: int = 8,
    seq_len: int = 48,
    hot_fraction: float = 0.004,
) -> Table:
    """Regenerate Figures 10-11: outlier channel counts and skew.

    Runs calibration over a wide synthetic model and reports, per linear
    site class, the mean outlier channels per inference (Fig. 10: <0.3% of
    channels) and the channel fraction covering 80% of outlier hits
    (Fig. 11: <3% of channels).
    """
    spec = OutlierSpec(hot_fraction=hot_fraction, spike_token_fraction=0.01)
    model = build_synthetic_model(OUTLIER_STATS_CONFIG, seed=seed,
                                  outliers=spec)
    corpus = calibration_corpus(OUTLIER_STATS_CONFIG, n_sequences, seq_len,
                                seed=seed)
    calib = calibrate(model, corpus, channel_percentile=99.5)

    table = Table(
        title="Figures 10-11 — outlier channel statistics "
              f"({OUTLIER_STATS_CONFIG.hidden_size}-wide substrate)",
        columns=["site", "width", "mean outlier ch/call", "fraction",
                 "hot ch for 80%", "hot fraction"],
    )
    for site in ("wq", "w_up", "w_down"):
        widths, means, hots = [], [], []
        for key in calib.keys():
            if key[1] != site:
                continue
            stats = calib[key]
            widths.append(stats.width)
            means.append(stats.mean_outlier_channels())
            hots.append(stats.hot_channels(0.8).size)
        table.add_row(
            site, int(np.mean(widths)), float(np.mean(means)),
            f"{np.mean(means) / np.mean(widths):.2%}",
            float(np.mean(hots)),
            f"{np.mean(hots) / np.mean(widths):.2%}",
        )
    table.add_note("paper: <0.3% of channels carry outliers per inference; "
                   "<3% of channels produce >80% of all outliers")
    return table


def fig12_importance(
    seed: int = 7,
    pruning_rates: Sequence[float] = (0.0, 0.5, 0.85, 1.0),
    benchmarks: Sequence[str] = ("hellaswag", "winogrande"),
    n_items_scale: float = 1.0,
) -> Table:
    """Regenerate Figure 12: per-layer importance profile (left) and
    accuracy vs pruned layers (right)."""
    config = ACCURACY_MODEL_CONFIG
    reference = _accuracy_model(seed)
    corpus = calibration_corpus(config, seed=seed)
    calib = calibrate(reference, corpus, channel_percentile=97.9)

    importance = calib.layer_importance()
    profile = Table(
        title="Figure 12 (left) — outlier importance per layer",
        columns=["layer", "importance"],
    )
    for layer in sorted(importance):
        profile.add_row(layer, importance[layer])

    suites = {}
    for name in benchmarks:
        bench = ACCURACY_BENCHMARKS[name]
        if n_items_scale != 1.0:
            import dataclasses
            bench = dataclasses.replace(
                bench, n_items=max(4, int(bench.n_items * n_items_scale))
            )
        items = build_items(bench, config)
        suites[name] = (bench, items,
                        model_answers(reference, bench, items))

    sweep = Table(
        title="Figure 12 (right) — accuracy vs pruned layers",
        columns=["pruning rate"] + [f"acc:{b}" for b in benchmarks],
    )
    for rate in pruning_rates:
        model = _accuracy_model(seed)
        quantize_model(model, "llm.npu", calibration=calib,
                       pruning_rate=rate)
        scores = [
            evaluate(model, ref_answers, bench, items)
            for (bench, items, ref_answers) in suites.values()
        ]
        sweep.add_row(f"{rate:.0%}", *scores)

    profile.add_note("paper: layers near the input and output are the most "
                     "important (U shape)")
    # Return both stacked in one table-like container: render profile then
    # sweep — keep them separate objects for assertions.
    profile.notes.append("companion table: " + sweep.title)
    return profile, sweep
