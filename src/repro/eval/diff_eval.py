"""Differential-attribution experiment: inject a slowdown, find it.

The ``diff-eval`` experiment is the diff layer's end-to-end proof: it
uses the PR-9 what-if machinery to inject a *known* operator slowdown
into the captured engine DAG, re-simulates, diffs the two runs'
critical paths, and checks that ``repro.diff/v1`` names exactly the
injected operator as the top contributor — with the attributed
per-segment deltas telescoping to the observed e2e delta within 1 ns.

Both properties are gated three ways: the tables below carry
directional metrics under ``bench-compare`` (committed goldens in
``benchmarks/results/json/``), ``scripts/check_determinism.sh``
re-derives the golden diff and asserts both, and the CI ``diff-smoke``
job runs ``llmnpu diff`` over the pair and greps for the operator.
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

from repro.core import LlmNpuEngine
from repro.core.scheduler import get_policy
from repro.errors import EngineError
from repro.eval.report import Table
from repro.hw.sim import Simulator
from repro.hw.soc import get_device
from repro.model.config import get_model_config
from repro.obs.critical_path import critical_path, critpath_doc
from repro.obs.diff import (
    DIFF_TOL_S,
    diff_docs,
    diff_json,
    diff_narrative,
)
from repro.obs.whatif import (
    OperatorSpeedup,
    capture_engine_run,
    perturb_tasks,
)

#: The operator the golden experiment slows down, and by how much
#: (``factor=0.5`` doubles every matching task's duration — the
#: :class:`~repro.obs.whatif.OperatorSpeedup` convention).
INJECTED_TAG = "sg1"
INJECTED_FACTOR = 0.5


def injected_slowdown_docs(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    prompt_len: int = 512,
    output_tokens: int = 4,
    tag: str = INJECTED_TAG,
    factor: float = INJECTED_FACTOR,
) -> Tuple[dict, dict]:
    """Baseline and injected-slowdown ``repro.critpath/v1`` documents.

    Captures one engine inference's DAG, simulates it untouched, then
    re-simulates with every ``tag``-matching task slowed by
    ``1/factor`` — the same replay path the what-if estimator verifies
    against, so the pair differs *only* by the injected perturbation.
    """
    cfg = get_model_config(model) if isinstance(model, str) else model
    dev = get_device(device) if isinstance(device, str) else device
    engine = LlmNpuEngine(cfg, dev)
    run = capture_engine_run(engine, prompt_len,
                             output_tokens=output_tokens)
    policy = (get_policy(run.policy) if isinstance(run.policy, str)
              else run.policy)
    source = f"prompt {prompt_len}"
    base_trace = Simulator(list(run.processors)).run(
        list(run.tasks), policy)
    base_path = critical_path(base_trace, tasks=run.tasks, source=source)
    slowed = perturb_tasks(run, [OperatorSpeedup(tag=tag, factor=factor)])
    slow_trace = Simulator(list(run.processors)).run(list(slowed), policy)
    slow_path = critical_path(slow_trace, tasks=slowed, source=source)
    base_doc = critpath_doc(
        [base_path], source=f"baseline {cfg.name} prompt={prompt_len}")
    slow_doc = critpath_doc(
        [slow_path],
        source=f"slowdown {tag} x{1 / factor:g} {cfg.name} "
               f"prompt={prompt_len}")
    return base_doc, slow_doc


def injected_slowdown_diff(**kwargs) -> dict:
    """The ``repro.diff/v1`` document of the injected-slowdown pair."""
    base_doc, slow_doc = injected_slowdown_docs(**kwargs)
    return diff_docs(base_doc, slow_doc)


def golden_diff_json(**kwargs) -> str:
    """Deterministic JSON of :func:`injected_slowdown_diff` — a pure
    function of its arguments, so ``scripts/check_determinism.sh``
    byte-diffs two independent evaluations."""
    return diff_json(injected_slowdown_diff(**kwargs))


def golden_baseline_critpath_json(**kwargs) -> str:
    """Deterministic JSON of the baseline critpath doc alone — the
    committed golden the ``bench-compare --explain`` registry re-runs
    regressed benchmarks against."""
    base_doc, _slow_doc = injected_slowdown_docs(**kwargs)
    return json.dumps(base_doc, indent=2, sort_keys=True,
                      allow_nan=False)


def diff_attribution_table(doc: dict, tag: str = INJECTED_TAG,
                           title: Optional[str] = None) -> Table:
    """Top contributors of a critpath diff, plus the two gate columns.

    ``top-contributor hit rate`` is 1.0 exactly when the biggest
    per-stage delta belongs to the injected operator; ``residual us``
    is the worst per-request conservation residual.  Both are
    directional under ``bench-compare``, so a future change that breaks
    attribution fails the committed golden, not just the unit tests.
    """
    top = doc["top_contributors"][0] if doc["top_contributors"] else None
    if top is None:
        raise EngineError("diff has no contributors to attribute")
    hit = 1.0 if top["tag"] == tag else 0.0
    residual_s = max((abs(r["residual_s"]) for r in doc["requests"]),
                     default=0.0)
    table = Table(
        title=title or (f"Injected-slowdown attribution — "
                        f"{doc['new']['source']}"),
        columns=["stage", "delta ms", "share %",
                 "top-contributor hit rate", "residual us"],
    )
    for i, c in enumerate(doc["top_contributors"][:8]):
        table.add_row(
            c["tag"], c["delta_s"] * 1e3,
            None if c["share"] is None else c["share"] * 100,
            hit if i == 0 else None,
            residual_s * 1e6 if i == 0 else None,
        )
    table.add_note(
        f"injected: {tag} slowed x{1 / INJECTED_FACTOR:g}; the diff must "
        f"rank it top and telescope per-segment deltas to the e2e delta "
        f"within {DIFF_TOL_S:.0e} s"
    )
    return table


def diff_summary_table(doc: dict, title: Optional[str] = None) -> Table:
    """e2e movement + segment-status census of a critpath diff."""
    e2e = doc["e2e"]
    table = Table(
        title=title or "Run diff summary",
        columns=["diff", "requests", "base e2e ms", "new e2e ms",
                 "delta ms", "grew", "shrank", "appeared", "vanished",
                 "unchanged"],
    )
    status = doc["by_status"]
    table.add_row(
        "base vs new", float(doc["n_requests"]), e2e["base_s"] * 1e3,
        e2e["new_s"] * 1e3, e2e["delta_s"] * 1e3,
        float(status["grew"]), float(status["shrank"]),
        float(status["appeared"]), float(status["vanished"]),
        float(status["unchanged"]),
    )
    table.add_note("statuses count aligned critical-path segments; "
                   "'appeared'/'vanished' are path membership changes, "
                   "not new work")
    return table


def diff_demo(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    prompt_len: int = 512,
    diff_out: Optional[str] = None,
) -> Tuple[Table, ...]:
    """The ``diff-eval`` experiment driver (``llmnpu run diff-eval``)."""
    doc = injected_slowdown_diff(model=model, device=device,
                                 prompt_len=prompt_len)
    if diff_out:
        from repro.obs.export import open_text
        with open_text(diff_out, "w") as fh:
            fh.write(diff_json(doc))
            fh.write("\n")
    tables = (
        diff_summary_table(
            doc, title=f"Run diff — baseline vs {INJECTED_TAG} slowed "
                       f"x{1 / INJECTED_FACTOR:g} (prompt={prompt_len})"),
        diff_attribution_table(doc),
    )
    return tables


def diff_demo_narrative(**kwargs) -> str:
    """The per-request narrative of the demo diff, as printable text."""
    doc = injected_slowdown_diff(**kwargs)
    return "\n".join(diff_narrative(doc))


# -- bench-compare --explain registry -----------------------------------------


def _fresh_service_critpath() -> dict:
    from repro.eval.whatif_eval import golden_critpath_doc
    return golden_critpath_doc()


def _fresh_injected_baseline() -> dict:
    return injected_slowdown_docs()[0]


def golden_scenarios() -> dict:
    """Registry behind ``bench-compare --explain``.

    Maps a benchmark artifact stem (``BENCH_<stem>.json``) to
    ``(committed golden attribution doc, fresh-scenario callable)``.
    When a metric of that artifact regresses, ``--explain`` re-runs the
    scenario and diffs it against the committed doc, so CI logs carry
    the operator-level root cause, not just the failing metric.
    """
    import os

    from repro.eval.report import results_dir
    json_dir = os.path.join(results_dir(), "json")
    service = (os.path.join(json_dir, "GOLDEN_critpath.json.gz"),
               _fresh_service_critpath)
    injected = (os.path.join(json_dir, "GOLDEN_diff_baseline.json.gz"),
                _fresh_injected_baseline)
    return {
        "critpath": service,
        "critpath_requests": service,
        "dma_ablation": service,
        "stage_crossover": service,
        "diff_attribution": injected,
    }


def explain_regression(artifact_stem: str) -> Optional[dict]:
    """The attribution diff for one regressed benchmark artifact.

    Returns None when no golden scenario is registered for the stem;
    raises :class:`~repro.errors.ReproError` subclasses when the golden
    doc is unreadable or the runs cannot be aligned.
    """
    entry = golden_scenarios().get(artifact_stem)
    if entry is None:
        return None
    golden_path, fresh = entry
    from repro.obs.export import open_text
    try:
        with open_text(golden_path) as fh:
            golden = json.load(fh)
    except (OSError, ValueError) as exc:
        raise EngineError(
            f"cannot read committed golden {golden_path!r}: {exc}"
        ) from None
    return diff_docs(golden, fresh())


__all__ = [
    "INJECTED_TAG",
    "INJECTED_FACTOR",
    "injected_slowdown_docs",
    "injected_slowdown_diff",
    "golden_diff_json",
    "golden_baseline_critpath_json",
    "diff_attribution_table",
    "diff_summary_table",
    "diff_demo",
    "diff_demo_narrative",
    "golden_scenarios",
    "explain_regression",
]
