"""Ablation drivers for the design choices DESIGN.md calls out.

Beyond the paper's own Fig. 19 ladder, these sweep the individual design
parameters: chunk length, scheduler policy, hot-channel cache fraction,
and the equivalent-shape optimization — plus the §5 future-hardware
what-if analysis.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import EngineConfig, HotChannelPolicy, LlmNpuEngine
from repro.core.hot_channels import cache_saving_fraction, shadow_weight_bytes
from repro.eval.report import Table
from repro.graph.chunk import padded_tokens
from repro.hw.soc import get_device
from repro.model.config import get_model_config


def ablation_chunk_length(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    chunk_lens: Sequence[int] = (64, 128, 256, 512),
    prompt_lens: Sequence[int] = (300, 1024),
) -> Table:
    """End-to-end effect of the chunk length (not just per-op cost, Fig. 8):
    smaller chunks waste less padding but pay more dispatches and worse NPU
    utilization; larger chunks pad short prompts heavily."""
    cfg = get_model_config(model) if isinstance(model, str) else model
    dev = get_device(device) if isinstance(device, str) else device
    table = Table(
        title=f"Ablation — chunk length, {cfg.name} prefill (tokens/s)",
        columns=["chunk length"]
        + [f"prompt={p}" for p in prompt_lens]
        + [f"padding @{prompt_lens[0]}"],
    )
    for chunk in chunk_lens:
        engine = LlmNpuEngine(cfg, dev, EngineConfig(
            chunk_len=chunk,
            max_chunks=max(2, (max(prompt_lens) + chunk - 1) // chunk),
        ))
        speeds = [engine.prefill(p).tokens_per_s for p in prompt_lens]
        table.add_row(chunk, *speeds, padded_tokens(prompt_lens[0], chunk))
    table.add_note("the paper picks 256: near-peak long-prompt speed with "
                   "bounded padding waste on short prompts")
    return table


def ablation_scheduler(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    prompt_len: int = 1024,
    policies: Sequence[str] = ("in-order", "chunk-order", "fifo",
                               "latency-greedy", "ooo-normalized", "ooo"),
) -> Table:
    """Scheduler-policy comparison on the same task graph."""
    cfg = get_model_config(model) if isinstance(model, str) else model
    dev = get_device(device) if isinstance(device, str) else device
    table = Table(
        title=f"Ablation — scheduling policy, {cfg.name}, "
              f"prompt={prompt_len}",
        columns=["policy", "prefill ms", "tok/s", "NPU bubble rate",
                 "vs in-order"],
    )
    baseline_ms = None
    for policy in policies:
        engine = LlmNpuEngine(cfg, dev, EngineConfig(policy=policy))
        report = engine.prefill(prompt_len)
        ms = report.latency_s * 1e3
        if policy == "in-order":
            baseline_ms = ms
        reduction = (f"-{1 - ms / baseline_ms:.0%}"
                     if baseline_ms and baseline_ms != ms else "0%")
        table.add_row(policy, ms, report.tokens_per_s,
                      f"{report.npu_bubble_rate:.1%}", reduction)
    table.add_note("the paper's Eq. 5 heuristic ('ooo') targets NPU-stall "
                   "reduction rather than task latency")
    return table


def ablation_hot_channels(
    model="Qwen1.5-1.8B",
    fractions: Sequence[float] = (0.01, 0.03, 0.10, 0.30, 1.0),
) -> Table:
    """Hot-channel cache sizing: resident shadow-weight memory vs the
    expected cold-miss rate (§3.3's memory/latency trade)."""
    cfg = get_model_config(model) if isinstance(model, str) else model
    n_unpruned = cfg.n_layers - round(cfg.n_layers * 0.85)
    table = Table(
        title=f"Ablation — hot-channel cache fraction, {cfg.name}",
        columns=["resident fraction", "shadow weights MiB",
                 "memory saving", "approx hit rate"],
    )
    for fraction in fractions:
        # Fig. 11's skew: coverage grows steeply then saturates; model the
        # hit rate with the measured shape (3% of channels -> 80% of hits).
        hit_rate = min(1.0, 0.8 * (fraction / 0.03) ** 0.3) if fraction < 1.0 else 1.0
        policy = HotChannelPolicy(hot_fraction=fraction,
                                  hit_rate=hit_rate,
                                  enabled=fraction < 1.0)
        resident = shadow_weight_bytes(cfg, n_unpruned, policy)
        saving = cache_saving_fraction(cfg, policy)
        table.add_row(f"{fraction:.0%}", resident / 2**20,
                      f"{saving:.0%}", f"{hit_rate:.0%}")
    table.add_note("paper: keeping <3% of channels resident covers >80% "
                   "of outliers and cuts shadow memory by 34.3%")
    return table


def ablation_equivalent_shapes(
    models: Sequence[str] = ("Qwen1.5-1.8B", "Gemma-2B"),
    device="Redmi K70 Pro",
    prompt_len: int = 1024,
) -> Table:
    """The §4 equivalent-shape optimization on/off."""
    dev = get_device(device) if isinstance(device, str) else device
    table = Table(
        title="Ablation — equivalent-shape optimization "
              f"(prompt={prompt_len})",
        columns=["model", "off tok/s", "on tok/s", "gain"],
    )
    for model in models:
        cfg = get_model_config(model)
        off = LlmNpuEngine(cfg, dev, EngineConfig(
            equivalent_shapes=False)).prefill(prompt_len).tokens_per_s
        on = LlmNpuEngine(cfg, dev, EngineConfig(
            equivalent_shapes=True)).prefill(prompt_len).tokens_per_s
        table.add_row(cfg.name, off, on, f"{on / off:.2f}x")
    table.add_note("paper measures a 1.62x kernel-level gain for square "
                   "input views; the end-to-end gain is diluted by "
                   "memory-bound MatMuls and CPU-side work")
    return table


def mixed_precision_npu(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    prompt_len: int = 512,
    fp16_tflops: Sequence[float] = (0.00317, 0.5, 1.0, 4.0),
) -> Table:
    """§5's third hardware implication, quantified: with FP16-capable NPU
    units, the float operators (attention, norms, shadow merges) can move
    onto the NPU, eliminating cross-processor synchronization entirely.

    The first sweep point is today's Hexagon FP16 path (3.17 GFLOPS —
    catastrophic); the rest are hypothetical mixed-precision designs.
    """
    from repro.hw.soc import with_mixed_precision_npu

    cfg = get_model_config(model) if isinstance(model, str) else model
    dev = get_device(device) if isinstance(device, str) else device
    table = Table(
        title=f"§5 what-if — mixed-precision NPU, {cfg.name}, "
              f"prompt={prompt_len}",
        columns=["NPU FP16 TFLOPS", "all-NPU tok/s", "CPU-NPU tok/s",
                 "all-NPU wins?"],
    )
    cpu_coord = LlmNpuEngine(cfg, dev).prefill(prompt_len).tokens_per_s
    for tflops in fp16_tflops:
        what_if = with_mixed_precision_npu(dev, fp16_peak_ops=tflops * 1e12)
        engine = LlmNpuEngine(cfg, what_if,
                              EngineConfig(float_backend="npu"))
        speed = engine.prefill(prompt_len).tokens_per_s
        table.add_row(f"{tflops:g}", speed, cpu_coord,
                      "yes" if speed > cpu_coord else "no")
    table.add_note("today's Hexagon FP16 (0.003 TFLOPS) makes all-NPU "
                   "execution catastrophic; around ~1 TFLOPS of NPU FP16 "
                   "the all-NPU design overtakes CPU-NPU coordination by "
                   "removing every synchronization fence")
    return table


def short_prompt_crossover(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    prompt_lens: Sequence[int] = (8, 16, 32, 64, 128, 256),
) -> Table:
    """Extension: the short-prompt crossover Figure 14's grid never samples.

    llm.npu's fixed 256-token chunks (§3.2) mean every prompt pays at
    least one full chunk; below ~50 tokens a GPU engine with no
    static-shape constraint is faster.  The :class:`HybridEngine` profiles
    this crossover once and dispatches per request.
    """
    from repro.baselines.engines import TfliteEngine
    from repro.core.hybrid import HybridEngine

    cfg = get_model_config(model) if isinstance(model, str) else model
    dev = get_device(device) if isinstance(device, str) else device
    npu = LlmNpuEngine(cfg, dev)
    gpu = TfliteEngine(cfg, dev)
    hybrid = HybridEngine(cfg, dev)
    table = Table(
        title=f"Extension — short-prompt crossover, {cfg.name}",
        columns=["prompt", "llm.npu ms", "TFLite-GPU ms", "hybrid ms",
                 "hybrid picks"],
    )
    for p in prompt_lens:
        a = npu.prefill(p).latency_s * 1e3
        b = gpu.prefill(p).latency_s * 1e3
        h = hybrid.prefill(p).latency_s * 1e3
        table.add_row(p, a, b, h, hybrid.pick(p))
    table.add_note(
        f"profiled crossover: {hybrid.crossover_tokens} tokens — below it, "
        "llm.npu's mandatory full-chunk padding loses to the GPU engine; "
        "the hybrid dispatcher always matches the winner"
    )
    return table


def tri_processor(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    prompt_len: int = 1024,
    pruning_rates: Sequence[float] = (0.0, 0.85),
) -> Table:
    """Extension: does a *third* processor help?

    The paper's prototype uses two processors (NPU + CPU, or NPU + GPU in
    the Fig. 18 simulation).  This sweep adds a tri-processor mode —
    attention on the GPU, shadow compensation on the CPU — and finds it
    buys nothing: shadow MatMuls are so small (a handful of outlier
    channels, §3.3) that they never contend with attention for the float
    processor, confirming the paper's claim that shadow execution hides
    entirely under the NPU.
    """
    cfg = get_model_config(model) if isinstance(model, str) else model
    dev = get_device(device) if isinstance(device, str) else device
    table = Table(
        title=f"Extension — tri-processor execution, {cfg.name}, "
              f"prompt={prompt_len}",
        columns=["pruning rate", "CPU-NPU tok/s", "GPU-NPU tok/s",
                 "GPU+CPU+NPU tok/s"],
    )
    for rate in pruning_rates:
        cpu = LlmNpuEngine(cfg, dev, EngineConfig(
            pruning_rate=rate)).prefill(prompt_len).tokens_per_s
        gpu = LlmNpuEngine(cfg, dev, EngineConfig(
            pruning_rate=rate, float_backend="gpu",
        )).prefill(prompt_len).tokens_per_s
        tri = LlmNpuEngine(cfg, dev, EngineConfig(
            pruning_rate=rate, float_backend="gpu", shadow_backend="cpu",
        )).prefill(prompt_len).tokens_per_s
        table.add_row(f"{rate:.0%}", cpu, gpu, tri)
    table.add_note("negative result: the tri-processor mode matches "
                   "GPU-NPU — shadow work is too small to contend, as the "
                   "paper's overlap argument predicts")
    return table


def dma_overlap(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    chunk_len: int = 256,
    buffer_depths: Sequence[int] = (1, 2, 4),
) -> Table:
    """DMA/compute-overlap model (double/quad-buffered weight streaming)
    vs the legacy per-profile combine rule, on one prefill chunk's NPU
    subgraphs.  ``buffers=1`` serializes streaming and arithmetic; deeper
    pools converge on the ideal-overlap limit the default ``"max"``
    combine assumes."""
    from repro.graph.builder import BuildOptions, GraphBuilder
    from repro.hw.dma import DmaConfig
    cfg = get_model_config(model) if isinstance(model, str) else model
    dev = get_device(device) if isinstance(device, str) else device
    legacy = GraphBuilder(cfg, dev).build_chunk(0, chunk_len)
    legacy_ms = legacy.npu_latency_s() * 1e3
    table = Table(
        title=f"DMA/compute overlap — {cfg.name}, chunk={chunk_len}",
        columns=["weight streaming", "NPU chunk ms", "vs ideal overlap"],
    )
    table.add_row("ideal (legacy 'max' combine)", legacy_ms, "1.00x")
    for depth in buffer_depths:
        options = BuildOptions(dma=DmaConfig(buffers=depth))
        plan = GraphBuilder(cfg, dev, options).build_chunk(0, chunk_len)
        ms = plan.npu_latency_s() * 1e3
        label = {1: "serial (no overlap)", 2: "double-buffered",
                 4: "quad-buffered"}.get(depth, f"{depth}-deep pipeline")
        table.add_row(label, ms, f"{ms / legacy_ms:.2f}x")
    table.add_note("double buffering already hides nearly all weight "
                   "streaming; the residual is the pipeline-fill ramp "
                   "(the first tile's DMA cannot overlap anything)")
    return table


def future_hardware(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    prompt_len: int = 1024,
    npu_speedups: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
) -> Table:
    """§5's hardware-design implications, quantified: how far faster NPUs
    carry prefill before the CPU float path becomes the bottleneck."""
    cfg = get_model_config(model) if isinstance(model, str) else model
    dev = get_device(device) if isinstance(device, str) else device
    table = Table(
        title=f"§5 what-if — NPU speedups, {cfg.name}, prompt={prompt_len}",
        columns=["NPU speedup", "prefill tok/s", "NPU busy s",
                 "float busy s", "bottleneck"],
    )
    for factor in npu_speedups:
        what_if = dev.scaled(
            name=f"{dev.name} x{factor:g}", soc=dev.soc,
            cpu_gpu=1.0, npu=factor, dram_bytes=dev.dram_bytes,
        )
        engine = LlmNpuEngine(cfg, what_if)
        report = engine.prefill(prompt_len)
        bottleneck = ("NPU" if report.npu_busy_s > report.float_busy_s
                      else "CPU")
        table.add_row(f"{factor:g}x", report.tokens_per_s,
                      report.npu_busy_s, report.float_busy_s, bottleneck)
    table.add_note("once the CPU float path dominates, the paper's §5 "
                   "remedies apply: GPU coordination and mixed-precision "
                   "NPU units")
    return table
