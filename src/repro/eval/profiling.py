"""Profiling drivers: attribution reports over the golden service run.

Glues :mod:`repro.obs.profile` to the evaluation layer: profiles every
completed request of the golden two-tier service workload
(:func:`~repro.eval.service_eval.service_golden_records`), merges the
per-request attributions into one report, and renders the tables /
deterministic JSON behind ``llmnpu profile`` and the CI determinism
check.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import EngineError
from repro.eval.report import Table
from repro.eval.service_eval import service_golden_records


def service_profile_report(seed: int = 42, batching=None):
    """The merged :class:`~repro.obs.profile.ProfileReport` of the golden
    service workload, with the service's metrics snapshot attached.

    Every completed request's unified prefill+decode timeline is
    profiled individually (time attribution, idle-cause classification,
    per-event energy mirroring the engine's accounting) and the
    per-request reports are merged — so the conservation invariant
    (busy + classified idle = window per processor) and the energy
    reconciliation against the engine's reported totals hold for the
    aggregate exactly as they do per request.
    """
    from repro.obs import (
        MetricsRegistry,
        merge_profiles,
        profile_inference,
    )
    metrics = MetricsRegistry()
    service = service_golden_records(seed=seed, metrics=metrics,
                                     batching=batching)
    device = service.device
    cfg = service.config
    profiles = []
    for record in service.requests:
        if record.status != "completed" or record.report is None:
            continue
        profiles.append(profile_inference(
            record.report, device,
            float_backend=cfg.float_backend,
            decode_backend=cfg.decode_backend,
        ))
    if not profiles:
        raise EngineError("golden workload completed no requests")
    merged = merge_profiles(profiles)
    merged.metrics = metrics.snapshot()
    return merged, service


def operator_table(report, title: str = "Per-operator attribution") -> Table:
    """Operator-tag cost table from a profile report."""
    busy_by_proc = {p.proc: p.busy_s for p in report.processors}
    table = Table(
        title=title,
        columns=["proc", "operator", "events", "busy ms", "share %",
                 "matmul gops"],
    )
    for op in report.operators:
        proc_busy = busy_by_proc.get(op.proc, 0.0)
        table.add_row(
            op.proc, op.tag, op.n_events, op.busy_s * 1e3,
            (op.busy_s / proc_busy * 100) if proc_busy > 0 else 0.0,
            op.ops / 1e9,
        )
    table.add_note("per-operator busy sums to processor busy; 'share' is "
                   "of the owning processor's busy time")
    return table


def energy_table(report, title: str = "Energy attribution") -> Table:
    """Per-processor energy rollup from a profile report."""
    table = Table(
        title=title,
        columns=["component", "active J", "idle J", "total J", "share %"],
    )
    if report.energy is None:
        raise EngineError("profile has no energy section")
    total = report.energy["total_j"]
    for proc in sorted(report.energy["per_processor"]):
        section = report.energy["per_processor"][proc]
        active = sum(section["tags"].values())
        table.add_row(proc, active, section["idle_j"], section["total_j"],
                      section["total_j"] / total * 100 if total else 0.0)
    platform = report.energy["platform_j"]
    table.add_row("platform", None, None, platform,
                  platform / total * 100 if total else 0.0)
    table.add_note("per-event attribution replays the engine's power "
                   "model; totals reconcile with hw/energy.py")
    return table


def service_profile(seed: int = 42,
                    profile_out: Optional[str] = None) -> Tuple[Table, ...]:
    """The ``service-profile`` experiment: attribution tables over the
    golden workload (optionally writing the full JSON report)."""
    report, service = service_profile_report(seed=seed)
    n_done = sum(1 for r in service.requests if r.status == "completed")
    summary = report.summary_table()
    summary.title = (f"Per-processor attribution — golden service workload "
                     f"(seed={seed}, {n_done} completed requests)")
    tables = (
        summary,
        operator_table(report),
        energy_table(report),
    )
    if profile_out:
        report.save(profile_out)
    return tables


def golden_profile_json(seed: int = 42, batching=None) -> str:
    """Canonical profile-report JSON of the golden scenario (one string).

    A pure function of ``seed`` — no timestamps, no environment — so
    ``scripts/check_determinism.sh`` byte-diffs two independent
    evaluations (including the sequential batching config against the
    per-request baseline), and the traced-smoke CI job schema-checks
    the same bytes.
    """
    report, _service = service_profile_report(seed=seed, batching=batching)
    return report.to_json()
