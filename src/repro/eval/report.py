"""Plain-text table rendering for the experiment drivers.

Every evaluation driver returns a :class:`Table`; the benchmark harness
renders it to the terminal and archives it under ``benchmarks/results/``
so EXPERIMENTS.md can reference regenerated numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Union

from repro.errors import ReproError

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000:
        return f"{value:,.0f}"
    if magnitude >= 10:
        return f"{value:.1f}"
    return f"{value:.{precision}f}"


@dataclass
class Table:
    """A titled grid of cells with named columns."""

    title: str
    columns: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ReproError(
                f"table {self.title!r}: row has {len(cells)} cells, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Cell]:
        """Values of a named column across rows."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise ReproError(
                f"table {self.title!r} has no column {name!r}"
            ) from None
        return [row[idx] for row in self.rows]

    def row_by_key(self, key: str) -> List[Cell]:
        """First row whose first cell equals ``key``."""
        for row in self.rows:
            if row and row[0] == key:
                return row
        raise ReproError(f"table {self.title!r} has no row {key!r}")

    def value(self, row_key: str, column: str) -> Cell:
        """Cell lookup by row key (first column) and column name."""
        idx = self.columns.index(column) if column in self.columns else None
        if idx is None:
            raise ReproError(
                f"table {self.title!r} has no column {column!r}"
            )
        return self.row_by_key(row_key)[idx]

    def render(self, precision: int = 2) -> str:
        """Aligned plain-text rendering."""
        grid = [self.columns] + [
            [format_cell(c, precision) for c in row] for row in self.rows
        ]
        widths = [
            max(len(str(grid_row[i])) for grid_row in grid)
            for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            str(c).ljust(widths[i]) for i, c in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in grid[1:]:
            lines.append("  ".join(
                row[i].ljust(widths[i]) for i in range(len(row))
            ))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self, precision: int = 2) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(format_cell(c, precision) for c in row)
                + " |"
            )
        for note in self.notes:
            lines.append(f"\n_{note}_")
        return "\n".join(lines)

    def save(self, path: str, precision: int = 2) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as f:
            f.write(self.render(precision) + "\n")


def results_dir() -> str:
    """Directory where benchmark runs archive their tables."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )))
    return os.path.join(here, "benchmarks", "results")


def archive(table: Table, filename: str) -> str:
    """Save a table under benchmarks/results/; returns the path."""
    path = os.path.join(results_dir(), filename)
    table.save(path)
    return path
