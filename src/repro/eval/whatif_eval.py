"""Critical-path and what-if experiment drivers.

Three experiments hang off the tentpole modules:

- ``critpath`` — per-request critical-path attribution over the golden
  two-tier service workload, rolled into the deterministic
  ``repro.critpath/v1`` artifact CI byte-diffs.
- ``dma-ablation`` — the calibrated :class:`~repro.hw.dma.DmaConfig`
  buffer-depth ladder (1, 2, 4, unbounded), with the what-if estimator's
  prediction cross-checked against each rebuilt engine's measured
  latency.
- ``stage-crossover`` — prompt length x float-processor placement sweep
  (ROADMAP item 3's input): measured CPU-vs-GPU coordination latency,
  the critical path's gating stage at each point, and the what-if
  estimator's calibrated prediction of the placement switch.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence, Tuple

from repro.core import EngineConfig, LlmNpuEngine
from repro.errors import EngineError
from repro.eval.report import Table
from repro.eval.service_eval import service_golden_records
from repro.hw.dma import DmaConfig
from repro.hw.soc import get_device
from repro.model.config import get_model_config
from repro.obs.critical_path import (
    critical_path,
    critpath_doc,
    request_critical_path,
)
from repro.obs.whatif import (
    ProcessorReassign,
    capture_engine_run,
    dma_overlap_perturbation,
    predict,
)


def service_critical_paths(seed: int = 42, batching=None):
    """Critical paths of every completed golden-workload request."""
    service = service_golden_records(seed=seed, batching=batching)
    decode_backend = service.config.decode_backend
    paths = []
    for record in service.requests:
        if record.status != "completed" or record.report is None:
            continue
        paths.append(request_critical_path(
            record, decode_backend=decode_backend))
    if not paths:
        raise EngineError("golden workload completed no requests")
    return paths, service


def golden_critpath_doc(seed: int = 42) -> dict:
    """The canonical ``repro.critpath/v1`` document of the golden run."""
    paths, _service = service_critical_paths(seed=seed)
    return critpath_doc(paths, source=f"golden service workload "
                                      f"seed={seed}")


def golden_critpath_json(seed: int = 42) -> str:
    """Deterministic JSON of :func:`golden_critpath_doc` — a pure
    function of ``seed``, so ``scripts/check_determinism.sh`` byte-diffs
    two independent evaluations and CI schema-checks the same bytes."""
    return json.dumps(golden_critpath_doc(seed=seed), indent=2,
                      sort_keys=True, allow_nan=False)


def critpath_stage_table(paths: Sequence,
                         title: Optional[str] = None) -> Table:
    """On-path time by stage tag, aggregated across requests."""
    by_tag = {}
    e2e = 0.0
    for path in paths:
        e2e += path.e2e_s
        for tag, seconds in path.by_tag().items():
            by_tag[tag] = by_tag.get(tag, 0.0) + seconds
    table = Table(
        title=title or (f"Critical-path attribution by stage "
                        f"({len(paths)} requests)"),
        columns=["stage", "on-path ms", "share of e2e %"],
    )
    for tag in sorted(by_tag, key=lambda t: -by_tag[t]):
        table.add_row(tag, by_tag[tag] * 1e3,
                      by_tag[tag] / e2e * 100 if e2e else 0.0)
    table.add_note("shares sum to 100%: on-path segments tile each "
                   "request's arrival-to-completion interval exactly "
                   "(validate_critical_path enforces 1e-9 s)")
    return table


def critpath_request_table(paths: Sequence,
                           title: Optional[str] = None) -> Table:
    """One row per request: who gated it, and by how much."""
    table = Table(
        title=title or "Per-request critical paths",
        columns=["request", "e2e ms", "on-path events", "top gating stage",
                 "top stage ms", "service share %"],
    )
    for path in paths:
        by_tag = path.by_tag()
        top = max(by_tag, key=lambda t: (by_tag[t], t))
        service_s = sum(s for t, s in by_tag.items()
                       if t in ("queued", "held"))
        table.add_row(
            path.source.replace("request ", ""), path.e2e_s * 1e3,
            len(path.segments), top, by_tag[top] * 1e3,
            service_s / path.e2e_s * 100 if path.e2e_s else 0.0,
        )
    table.add_note("'service share' is queueing + admission hold — latency "
                   "the scheduler, not the hardware, is responsible for")
    return table


def service_critpath(seed: int = 42,
                     critpath_out: Optional[str] = None) -> Tuple[Table, ...]:
    """The ``critpath`` experiment: critical-path attribution tables over
    the golden workload (optionally writing the ``repro.critpath/v1``
    artifact)."""
    paths, _service = service_critical_paths(seed=seed)
    tables = (
        critpath_stage_table(
            paths, title=f"Critical-path attribution by stage — golden "
                         f"service workload (seed={seed})"),
        critpath_request_table(paths),
    )
    if critpath_out:
        with open(critpath_out, "w", encoding="utf-8") as fh:
            fh.write(golden_critpath_json(seed=seed))
            fh.write("\n")
    return tables


# -- DMA ablation (satellite 1) ----------------------------------------------


def dma_ablation(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    prompt_len: int = 512,
    buffer_depths: Sequence[int] = (1, 2, 4),
) -> Table:
    """Calibrated DMA buffer-depth ablation, cross-checked by what-if.

    For each depth the engine is *actually rebuilt* with the explicit
    :class:`~repro.hw.dma.DmaConfig` streaming model and re-measured;
    the what-if estimator predicts the same point by replaying the
    baseline DAG with the id-matched duration deltas.  The two columns
    agreeing (|error| well under a nanosecond) is the calibration
    check — the estimator earns the right to answer questions we did
    not re-simulate.
    """
    cfg = get_model_config(model) if isinstance(model, str) else model
    dev = get_device(device) if isinstance(device, str) else device
    engine = LlmNpuEngine(cfg, dev)
    run = capture_engine_run(engine, prompt_len)
    baseline = predict(run, [])
    ideal_ms = engine.prefill(prompt_len).latency_s * 1e3
    table = Table(
        title=f"DMA ablation — {cfg.name}, prompt={prompt_len}, "
              f"measured vs what-if",
        columns=["weight streaming", "measured ms", "what-if ms",
                 "|error| ns", "vs ideal"],
    )
    table.add_row("unbounded buffers (legacy 'max' combine)", ideal_ms,
                  baseline.baseline.ttft_s * 1e3,
                  abs(ideal_ms - baseline.baseline.ttft_s * 1e3) * 1e6,
                  "1.00x")
    for depth in buffer_depths:
        pert, clone = dma_overlap_perturbation(
            engine, prompt_len, DmaConfig(buffers=depth))
        measured_ms = clone.prefill(prompt_len).latency_s * 1e3
        predicted_ms = predict(run, [pert]).predicted.ttft_s * 1e3
        label = {1: "serial (no overlap)", 2: "double-buffered",
                 4: "quad-buffered"}.get(depth, f"{depth}-deep pipeline")
        table.add_row(label, measured_ms, predicted_ms,
                      abs(measured_ms - predicted_ms) * 1e6,
                      f"{measured_ms / ideal_ms:.2f}x")
    table.add_note("double buffering recovers nearly all of the ideal "
                   "overlap; the what-if column replays the baseline DAG "
                   "with per-task DMA duration deltas instead of "
                   "rebuilding the engine")
    return table


# -- stage crossover (ROADMAP item 3) -----------------------------------------


def _placement_perturbations(base_run, target_run) -> List[ProcessorReassign]:
    """Calibrated reassignments turning ``base_run``'s placement into
    ``target_run``'s: one per stage tag whose processor moved, scaled by
    the measured duration ratio of that tag."""
    base_by_id = {t.task_id: t for t in base_run.tasks}
    moved = {}
    for t in target_run.tasks:
        old = base_by_id.get(t.task_id)
        if old is None or t.proc == old.proc:
            continue
        total_old, total_new, proc = moved.get(t.tag, (0.0, 0.0, t.proc))
        moved[t.tag] = (total_old + old.duration_s,
                        total_new + t.duration_s, t.proc)
    return [
        ProcessorReassign(tag=tag, proc=proc,
                          duration_scale=new / old if old else 1.0)
        for tag, (old, new, proc) in sorted(moved.items())
    ]


def stage_crossover(
    model="Qwen1.5-1.8B",
    device="Redmi K70 Pro",
    prompt_lens: Sequence[int] = (32, 64, 128, 256, 512, 1024),
    placements: Sequence[str] = ("cpu", "gpu"),
) -> Table:
    """Prompt length x float-processor placement sweep (ROADMAP item 3).

    At each prompt length, both placements are measured and the critical
    path names the gating stage; the what-if estimator then predicts the
    placement switch from the *baseline* run alone via calibrated
    per-stage reassignments.  Where the winner flips is the crossover
    the hybrid dispatcher should encode.
    """
    cfg = get_model_config(model) if isinstance(model, str) else model
    dev = get_device(device) if isinstance(device, str) else device
    base_proc, alt_proc = placements[0], placements[1]
    engines = {
        proc: LlmNpuEngine(cfg, dev, EngineConfig(float_backend=proc))
        for proc in placements
    }
    table = Table(
        title=f"Stage crossover — {cfg.name}, float placement "
              f"{base_proc} vs {alt_proc}",
        columns=["prompt", f"{base_proc} ms", f"{alt_proc} ms", "winner",
                 f"what-if {alt_proc} ms", "pred err %", "gating stage"],
    )
    for prompt in prompt_lens:
        reports = {proc: engines[proc].prefill(prompt)
                   for proc in placements}
        base_ms = reports[base_proc].latency_s * 1e3
        alt_ms = reports[alt_proc].latency_s * 1e3
        base_run = capture_engine_run(engines[base_proc], prompt)
        alt_run = capture_engine_run(engines[alt_proc], prompt)
        perts = _placement_perturbations(base_run, alt_run)
        predicted_ms = predict(base_run, perts).predicted.ttft_s * 1e3
        path = critical_path(reports[base_proc].trace)
        by_tag = path.by_tag()
        gating = max(by_tag, key=lambda t: (by_tag[t], t))
        # stringly-typed sweep key: the bench artifact labels rows by
        # their string cells, and (winner, gating stage) alone repeats
        table.add_row(
            str(prompt), base_ms, alt_ms,
            base_proc if base_ms <= alt_ms else alt_proc,
            predicted_ms,
            abs(predicted_ms - alt_ms) / alt_ms * 100 if alt_ms else 0.0,
            gating,
        )
    table.add_note("'what-if' predicts the placement switch from the "
                   "baseline DAG with per-stage calibrated reassignments "
                   "— no rebuild; small errors come from per-chunk "
                   "duration variation within a stage tag")
    return table
