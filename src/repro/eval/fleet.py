"""Fleet telemetry: merged sketches and SLO monitoring across devices.

An on-device LLM service ships to a heterogeneous fleet — flagship
phones next to budget SoCs, each with its own fault profile.  Per-device
raw latency samples never leave the device; what a fleet pipeline can
afford to collect is **mergeable telemetry**: bounded-size
:class:`~repro.obs.QuantileSketch`es and ``repro.alerts/v1`` incident
timelines.  This driver simulates that pipeline end to end:

1. each :class:`FleetDeviceSpec` runs the seeded two-tier workload on
   its own :class:`~repro.core.LlmService` with a device-specific
   :class:`~repro.hw.sim.FaultSpec`, watched by a streaming
   :class:`~repro.obs.SloMonitor`;
2. the per-device sketches merge into exact fleet-wide percentiles
   (merging the sketches equals sketching the pooled samples —
   bit-for-bit, see ``tests/eval/test_fleet.py``);
3. the per-device incident timelines concatenate (tagged with their
   ``source`` device) into one fleet ``repro.alerts/v1`` document, and
   the per-SLO good/bad counts sum into a fleet compliance scoreboard.

Everything is a pure function of the fleet seed: the ``repro.fleet/v1``
report is byte-identical across processes, which is what
``scripts/check_determinism.sh`` pins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import BatchConfig, goodput_rps
from repro.eval.report import Table
from repro.eval.service_eval import (
    BATCHING_BATCH_TOKENS,
    BATCHING_CONCURRENCY,
    BATCHING_TTFT_SLO,
    batching_arrivals,
    two_tier_arrivals,
    _run_two_tier,
)
from repro.hw.memory import GiB
from repro.hw.sim import FaultSpec
from repro.hw.soc import REDMI_K60_PRO, SocSpec
from repro.obs import (
    DEFAULT_RULES,
    ALERTS_SCHEMA,
    BurnRateRule,
    QuantileSketch,
    SloMonitor,
    SloSpec,
    StepLogger,
)

#: Schema identifier stamped into every fleet SLO report.
from repro.obs.schemas import FLEET_SCHEMA  # noqa: E402 (constant table)

#: The fleet's default objectives.  Targets are chosen so the burn-rate
#: ceiling ``1 / (1 - target)`` clears the fast-burn rule's threshold —
#: an SLO with a loose target (say 0.5) can never burn faster than 2x
#: and would make the 4x fast-burn rule unsatisfiable by construction.
FLEET_SLOS: Tuple[SloSpec, ...] = (
    SloSpec(name="interactive-latency", objective="latency", target=0.9,
            tier="interactive", threshold=4.0),
    SloSpec(name="interactive-availability", objective="availability",
            target=0.95, tier="interactive"),
    SloSpec(name="background-availability", objective="availability",
            target=0.8, tier="background"),
    SloSpec(name="request-energy", objective="energy", target=0.9,
            threshold=15.0),
)

#: A budget sibling of the paper's devices: uniformly slower CPU/GPU,
#: half-speed NPU, 8 GB of DRAM — the device that turns the shared
#: two-tier stream into sustained overload.
BUDGET_DEVICE: SocSpec = REDMI_K60_PRO.scaled(
    name="Redmi Budget (concept)",
    soc="Snapdragon 7 class",
    cpu_gpu=0.6,
    npu=0.5,
    dram_bytes=8 * GiB,
)


@dataclass(frozen=True)
class FleetDeviceSpec:
    """One simulated device of the fleet.

    ``device`` is a preset name or a full :class:`SocSpec`; ``seed``
    drives both the arrival stream and (offset, so the streams stay
    independent) the fault injector.  ``arrival`` selects the traffic
    model: ``"golden"`` replays the committed two-tier stream (the
    background tier arrives at a fixed cadence identical on every
    device), ``"poisson"`` redraws the arrival clock per device via
    :func:`jittered_arrivals` so a large fleet stops replaying
    byte-identical background traffic.
    """

    name: str
    device: Union[str, SocSpec]
    seed: int
    transient_rate: float = 0.0
    permanent_rate: float = 0.0
    n_interactive: int = 12
    n_background: int = 10
    model: str = "Qwen1.5-1.8B"
    arrival: str = "golden"

    @property
    def device_name(self) -> str:
        return self.device if isinstance(self.device, str) \
            else self.device.name

    def fault_spec(self) -> FaultSpec:
        return FaultSpec(transient_rate=self.transient_rate,
                         permanent_rate=self.permanent_rate,
                         seed=self.seed + 819)


#: (device, transient_rate, permanent_rate) templates the default fleet
#: cycles through: a healthy flagship, a mid-tier with flaky thermals,
#: and a budget device in a fault storm.
_FLEET_TEMPLATES: Tuple[Tuple[Union[str, SocSpec], float, float], ...] = (
    ("Redmi K70 Pro", 0.02, 0.0),
    ("Redmi K60 Pro", 0.15, 0.0),
    (BUDGET_DEVICE, 0.35, 0.1),
)


_SPLITMIX_MASK = (1 << 64) - 1


def _splitmix64(state: int) -> Tuple[int, int]:
    """One step of the SplitMix64 stream: ``(next_state, output)``."""
    state = (state + 0x9E3779B97F4A7C15) & _SPLITMIX_MASK
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _SPLITMIX_MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _SPLITMIX_MASK
    return state, z ^ (z >> 31)


def seed_stream(seed: int, n: int) -> List[int]:
    """``n`` decorrelated 31-bit seeds from one fleet seed.

    The legacy ``seed + 100 * i`` ladder keeps per-device RNG streams on
    arithmetic progressions — fine for 3 devices, visibly correlated
    fault draws at 1000 (nearby devices share low-bit structure).  A
    SplitMix64 walk gives every device an avalanche-mixed seed while
    staying a pure function of ``(seed, i)``.
    """
    state = seed & _SPLITMIX_MASK
    out = []
    for _ in range(n):
        state, z = _splitmix64(state)
        out.append(z % (1 << 31))
    return out


#: Mean arrival gaps of the golden two-tier stream, which the Poisson
#: redraw preserves: interactive gaps are ``uniform(0.8, 1.6)`` (mean
#: 1.2 s) and background requests land every 0.6 s after a 0.5 s lead-in.
JITTER_INTERACTIVE_MEAN_GAP_S = 1.2
JITTER_BACKGROUND_MEAN_GAP_S = 0.6
JITTER_BACKGROUND_START_S = 0.5

#: Offset folded into the jitter seed derivation so the arrival-jitter
#: RNG, the golden sampler (``seed``) and the fault injector
#: (``seed + 819``) never share a stream.
_JITTER_SEED_SALT = 4099


def jittered_arrivals(
    n_interactive: int = 12,
    n_background: int = 10,
    seed: int = 42,
    interactive_mean_gap_s: float = JITTER_INTERACTIVE_MEAN_GAP_S,
    background_mean_gap_s: float = JITTER_BACKGROUND_MEAN_GAP_S,
    background_start_s: float = JITTER_BACKGROUND_START_S,
):
    """Per-device Poisson redraw of the golden two-tier stream.

    The golden :func:`~repro.eval.service_eval.two_tier_arrivals`
    generator jitters the interactive tier per seed but schedules the
    background tier at a *fixed* cadence — so at 1000 devices every
    device replays byte-identical background traffic.  This variant
    keeps the golden workload *samples* (prompts, output lengths — same
    ``seed`` into the same samplers) and redraws only the arrival
    clock: per-tier exponential gaps (a Poisson process) whose means
    equal the golden cadences, drawn from a SplitMix-derived seed
    decorrelated from both the golden arrival RNG and the fault
    injector.  Still a pure function of its arguments, so fleet reports
    built on it stay byte-identical across processes.
    """
    golden = two_tier_arrivals(n_interactive=n_interactive,
                               n_background=n_background, seed=seed)
    rng = np.random.default_rng(
        seed_stream(seed + _JITTER_SEED_SALT, 1)[0])
    clock = {"interactive": 0.0, "background": background_start_s}
    mean = {"interactive": interactive_mean_gap_s,
            "background": background_mean_gap_s}
    stream = []
    for tier, sample, _golden_t in golden:
        clock[tier] += float(rng.exponential(mean[tier]))
        stream.append((tier, sample, clock[tier]))
    return stream


def default_fleet(n_devices: int = 3, seed: int = 42,
                  seeding: str = "splitmix") -> Tuple[FleetDeviceSpec, ...]:
    """A heterogeneous fleet cycling flagship / mid-tier / budget.

    ``seeding`` selects the per-device seed derivation: ``"splitmix"``
    (default — decorrelated SplitMix64 stream) or ``"legacy"`` (the
    original ``seed + 100 * i`` ladder, which the committed 3-device
    golden artifacts pin).  Splitmix fleets also get per-device Poisson
    arrival jitter (``arrival="poisson"``); legacy fleets keep the
    golden fixed-cadence stream so the committed artifacts stay
    bit-for-bit.
    """
    from repro.errors import ReproError
    if n_devices < 1:
        raise ReproError("fleet needs at least one device")
    if seeding not in ("splitmix", "legacy"):
        raise ReproError(
            f"seeding must be 'splitmix' or 'legacy', got {seeding!r}"
        )
    if seeding == "splitmix":
        seeds = seed_stream(seed, n_devices)
        arrival = "poisson"
    else:
        seeds = [seed + 100 * i for i in range(n_devices)]
        arrival = "golden"
    specs = []
    for i in range(n_devices):
        device, transient, permanent = _FLEET_TEMPLATES[
            i % len(_FLEET_TEMPLATES)]
        label = device if isinstance(device, str) else device.name
        slug = label.lower().split()[1 if " " in label else 0]
        specs.append(FleetDeviceSpec(
            name=f"dev{i:02d}-{slug}",
            device=device,
            seed=seeds[i],
            transient_rate=transient,
            permanent_rate=permanent,
            arrival=arrival,
        ))
    return tuple(specs)


def run_device(spec: FleetDeviceSpec,
               slos: Sequence[SloSpec] = FLEET_SLOS,
               rules: Sequence[BurnRateRule] = DEFAULT_RULES):
    """Run one device's workload under monitoring.

    Returns ``(service, monitor)`` — the monitor holds the device's
    sketches and incident timeline, the service the raw records.  The
    arrival stream follows ``spec.arrival`` (golden fixed-cadence
    replay or per-device Poisson jitter).
    """
    from repro.errors import ReproError
    monitor = SloMonitor(slos, rules=rules)
    if spec.arrival == "golden":
        stream = two_tier_arrivals(n_interactive=spec.n_interactive,
                                   n_background=spec.n_background,
                                   seed=spec.seed)
    elif spec.arrival == "poisson":
        stream = jittered_arrivals(n_interactive=spec.n_interactive,
                                   n_background=spec.n_background,
                                   seed=spec.seed)
    else:
        raise ReproError(
            f"arrival must be 'golden' or 'poisson', got "
            f"{spec.arrival!r}")
    service = _run_two_tier(
        "priority", True, spec.model, spec.device, stream,
        fault_spec=spec.fault_spec(), monitor=monitor,
    )
    return service, monitor


def run_step_probe(spec: FleetDeviceSpec,
                   monitor: Optional[SloMonitor] = None):
    """One device's batched scheduler probe: step telemetry only.

    The fleet's request path stays on the legacy per-request loop (the
    committed goldens pin its sketches and incident timelines); this
    probe replays the device under the golden batching config over its
    seeded batched arrival stream, recording a ``repro.steps/v1`` log.
    Only the *step* stream — step records and scheduler decisions — is
    fed into ``monitor`` (:meth:`SloMonitor.observe_step` /
    :meth:`~SloMonitor.observe_decision`), never the probe's request
    records, which would pollute the fleet's request sketches and
    compliance counts.  Returns ``(service, steplog)``.
    """
    steplog = StepLogger(source=f"{spec.name}-step-probe")
    service = _run_two_tier(
        "priority", True, spec.model, spec.device,
        batching_arrivals(seed=spec.seed),
        batching=BatchConfig(max_batch_tokens=BATCHING_BATCH_TOKENS,
                             max_concurrency=BATCHING_CONCURRENCY),
        steplog=steplog,
    )
    if monitor is not None:
        monitor.observe_steps(steplog.steps)
        for decision in steplog.decisions:
            monitor.observe_decision(decision)
    return service, steplog


def merged_sketches(
        monitors: Sequence[SloMonitor]) -> Dict[str, QuantileSketch]:
    """Merge per-device sketches key-by-key into fleet sketches."""
    merged: Dict[str, QuantileSketch] = {}
    for monitor in monitors:
        for key, sketch in monitor.sketches.items():
            if key in merged:
                merged[key].merge(sketch)
            else:
                merged[key] = QuantileSketch.from_dict(sketch.to_dict())
    return merged


def merged_compliance(slos: Sequence[SloSpec],
                      monitors: Sequence[SloMonitor]) -> List[dict]:
    """Fleet-wide compliance: per-SLO event/bad counts summed across
    devices, then re-derived good-fraction / budget burn / met."""
    per_device = [monitor.compliance() for monitor in monitors]
    out = []
    for i, slo in enumerate(slos):
        total = sum(rows[i]["n_events"] for rows in per_device)
        bad = sum(rows[i]["n_bad"] for rows in per_device)
        good_fraction = 1.0 if total == 0 else 1.0 - bad / total
        record = slo.to_dict()
        record.update({
            "n_events": total,
            "n_bad": bad,
            "good_fraction": good_fraction,
            "budget_burned": (0.0 if total == 0
                              else (bad / total) / slo.error_budget),
            "met": good_fraction >= slo.target,
        })
        out.append(record)
    return out


def merged_alerts(specs: Sequence[FleetDeviceSpec],
                  monitors: Sequence[SloMonitor],
                  slos: Sequence[SloSpec] = FLEET_SLOS,
                  rules: Sequence[BurnRateRule] = DEFAULT_RULES) -> dict:
    """One fleet ``repro.alerts/v1`` document.

    Incidents keep their device identity in a ``source`` field — the
    non-overlap invariant of the schema holds per ``(source, slo,
    rule)``, so concurrent incidents on different devices are legal.
    """
    incidents: List[dict] = []
    starts, ends = [], []
    n_requests = n_faults = 0
    for spec, monitor in zip(specs, monitors):
        timeline = monitor.timeline(source=spec.name)
        for incident in timeline["incidents"]:
            incidents.append({**incident, "source": spec.name})
        if timeline["n_request_events"] or timeline["n_fault_events"]:
            starts.append(timeline["start_s"])
            ends.append(timeline["end_s"])
        n_requests += timeline["n_request_events"]
        n_faults += timeline["n_fault_events"]
    incidents.sort(key=lambda inc: (inc["pending_s"], inc["source"],
                                    inc["slo"], inc["rule"]))
    return {
        "schema": ALERTS_SCHEMA,
        "source": "fleet",
        "start_s": min(starts) if starts else 0.0,
        "end_s": max(ends) if ends else 0.0,
        "n_request_events": n_requests,
        "n_fault_events": n_faults,
        "slos": merged_compliance(slos, monitors),
        "rules": [rule.to_dict() for rule in rules],
        "incidents": incidents,
    }


def _device_critpath_sketches(service) -> Dict[str, dict]:
    """Per-stage critical-path telemetry of one device, as serialized
    sketches.

    Each completed request's critical path is reduced to on-path
    seconds per stage tag and folded into one
    :class:`~repro.obs.QuantileSketch` per stage — the same mergeable
    shape the latency telemetry uses, so fleet-wide "which segments
    gate completion" roll-ups never ship raw per-request paths off
    device.
    """
    from repro.obs.critical_path import request_critical_path

    decode_backend = service.config.decode_backend
    sketches: Dict[str, QuantileSketch] = {}
    for record in service.requests:
        if record.status != "completed" or record.report is None:
            continue
        path = request_critical_path(record, decode_backend=decode_backend)
        for tag, seconds in path.by_tag().items():
            key = f"critpath.{tag}"
            if key not in sketches:
                sketches[key] = QuantileSketch()
            sketches[key].observe(seconds)
    return {key: sketch.to_dict() for key, sketch in sketches.items()}


def _device_payload(args) -> dict:
    """Run one device end-to-end and reduce it to a plain-dict payload.

    This is the multiprocessing work unit: everything the fleet merge
    needs — the per-device report record, serialized sketches, compliance
    counts, the incident timeline, and scheduler telemetry — as
    picklable primitives, so the parent never ships live monitors across
    process boundaries.  An optional fourth element of ``args`` turns on
    critical-path attribution (off by default: the committed fleet
    goldens and the gated device-rate benchmark pin the legacy payload).
    """
    spec, slos, rules, *rest = args
    with_critpath = bool(rest[0]) if rest else False
    service, monitor = run_device(spec, slos=slos, rules=rules)
    run_step_probe(spec, monitor)
    m = service.metrics()
    ttfts = sorted(r.ttft_s for r in service.requests
                   if r.status == "completed" and r.ttft_s is not None)
    itls = [r.itl_s for r in service.requests
            if r.status == "completed" and r.itl_s is not None]
    critpath = (_device_critpath_sketches(service) if with_critpath
                else {})
    return {
        "critpath": critpath,
        "record": {
            "name": spec.name,
            "device": spec.device_name,
            "seed": spec.seed,
            "transient_rate": spec.transient_rate,
            "permanent_rate": spec.permanent_rate,
            "n_requests": len(service.requests),
            "n_completed": m.n_completed,
            "n_rejected": m.n_rejected,
            "n_timeout": m.n_timeout,
            "n_failed": m.n_failed,
            "n_faults": monitor.n_faults,
            "ttft_p50_s": (float(np.percentile(ttfts, 50))
                           if ttfts else None),
            "ttft_p95_s": (float(np.percentile(ttfts, 95))
                           if ttfts else None),
            "mean_itl_s": (float(np.mean(itls)) if itls else None),
            "goodput_rps": float(goodput_rps(service.requests,
                                             BATCHING_TTFT_SLO)),
            "scheduler": monitor.scheduler_summary(),
        },
        "sketches": {key: sketch.to_dict()
                     for key, sketch in monitor.sketches.items()},
        "compliance": monitor.compliance(),
        "timeline": monitor.timeline(source=spec.name),
        "decision_counts": monitor.decision_counts(),
        "n_steps": monitor.n_steps,
    }


def _device_payloads(specs: Sequence[FleetDeviceSpec],
                     slos: Sequence[SloSpec],
                     rules: Sequence[BurnRateRule],
                     workers: int = 1,
                     critpath: bool = False) -> List[dict]:
    """Per-device payloads, in ``specs`` order, optionally fanned out."""
    from repro.errors import ReproError
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    items = [(spec, tuple(slos), tuple(rules), critpath)
             for spec in specs]
    workers = min(workers, len(items))
    if workers <= 1:
        return [_device_payload(item) for item in items]
    import multiprocessing
    ctx = multiprocessing.get_context("fork")
    chunksize = max(1, len(items) // (workers * 4))
    with ctx.Pool(processes=workers) as pool:
        # Pool.map returns results in submission order, so the payload
        # list — and everything merged from it — is independent of
        # worker scheduling.
        return pool.map(_device_payload, items, chunksize=chunksize)


def _merge_payload_sketches(payloads: Sequence[dict]
                            ) -> Dict[str, QuantileSketch]:
    """Merge serialized per-device sketches key-by-key (exact: integer
    buckets and Fraction sums, so merge order cannot change a bit)."""
    merged: Dict[str, QuantileSketch] = {}
    for payload in payloads:
        for key, doc in payload["sketches"].items():
            sketch = QuantileSketch.from_dict(doc)
            if key in merged:
                merged[key].merge(sketch)
            else:
                merged[key] = sketch
    return merged


def _merge_payload_compliance(slos: Sequence[SloSpec],
                              payloads: Sequence[dict]) -> List[dict]:
    """Fleet compliance from payload count rows (see
    :func:`merged_compliance`)."""
    out = []
    for i, slo in enumerate(slos):
        total = sum(p["compliance"][i]["n_events"] for p in payloads)
        bad = sum(p["compliance"][i]["n_bad"] for p in payloads)
        good_fraction = 1.0 if total == 0 else 1.0 - bad / total
        record = slo.to_dict()
        record.update({
            "n_events": total,
            "n_bad": bad,
            "good_fraction": good_fraction,
            "budget_burned": (0.0 if total == 0
                              else (bad / total) / slo.error_budget),
            "met": good_fraction >= slo.target,
        })
        out.append(record)
    return out


def _merge_payload_critpath(payloads: Sequence[dict]
                            ) -> Dict[str, QuantileSketch]:
    """Merge serialized per-device critical-path sketches key-by-key
    (same exactness guarantees as :func:`_merge_payload_sketches`)."""
    merged: Dict[str, QuantileSketch] = {}
    for payload in payloads:
        for key, doc in payload.get("critpath", {}).items():
            sketch = QuantileSketch.from_dict(doc)
            if key in merged:
                merged[key].merge(sketch)
            else:
                merged[key] = sketch
    return merged


def _merge_payload_alerts(payloads: Sequence[dict],
                          slos: Sequence[SloSpec],
                          rules: Sequence[BurnRateRule]) -> dict:
    """Fleet ``repro.alerts/v1`` from payload timelines (see
    :func:`merged_alerts`)."""
    incidents: List[dict] = []
    starts, ends = [], []
    n_requests = n_faults = 0
    for payload in payloads:
        timeline = payload["timeline"]
        source = timeline["source"]
        for incident in timeline["incidents"]:
            incidents.append({**incident, "source": source})
        if timeline["n_request_events"] or timeline["n_fault_events"]:
            starts.append(timeline["start_s"])
            ends.append(timeline["end_s"])
        n_requests += timeline["n_request_events"]
        n_faults += timeline["n_fault_events"]
    incidents.sort(key=lambda inc: (inc["pending_s"], inc["source"],
                                    inc["slo"], inc["rule"]))
    return {
        "schema": ALERTS_SCHEMA,
        "source": "fleet",
        "start_s": min(starts) if starts else 0.0,
        "end_s": max(ends) if ends else 0.0,
        "n_request_events": n_requests,
        "n_fault_events": n_faults,
        "slos": _merge_payload_compliance(slos, payloads),
        "rules": [rule.to_dict() for rule in rules],
        "incidents": incidents,
    }


def fleet_report(specs: Optional[Sequence[FleetDeviceSpec]] = None,
                 seed: int = 42,
                 slos: Sequence[SloSpec] = FLEET_SLOS,
                 rules: Sequence[BurnRateRule] = DEFAULT_RULES,
                 workers: int = 1,
                 critpath: bool = False) -> dict:
    """Run the fleet and aggregate into a ``repro.fleet/v1`` report.

    ``workers > 1`` fans the devices out over a fork-based process pool.
    The report is byte-identical for every worker count and for every
    permutation of ``specs``: devices are canonicalized to ``(name,
    seed)`` order before running, each device reduces to a plain-dict
    payload, and all merges are either exact (integer counts, Fraction
    sketch sums) or performed in canonical device order.

    ``critpath=True`` additionally attributes every completed request's
    critical path on-device and merges the per-stage sketches into a
    fleet-wide ``"critpath"`` section (top gating segments across the
    fleet).  Off by default: the committed goldens pin the legacy
    report bytes.
    """
    if specs is None:
        specs = default_fleet(seed=seed)
    specs = tuple(sorted(specs, key=lambda s: (s.name, s.seed)))
    payloads = _device_payloads(specs, slos, rules, workers=workers,
                                critpath=critpath)
    sketches = _merge_payload_sketches(payloads)
    alerts = _merge_payload_alerts(payloads, slos, rules)
    devices = []
    for spec, payload in zip(specs, payloads):
        timeline_incidents = [
            inc for inc in alerts["incidents"] if inc["source"] == spec.name
        ]
        base = payload["record"]
        record = {key: base[key] for key in (
            "name", "device", "seed", "transient_rate", "permanent_rate",
            "n_requests", "n_completed", "n_rejected", "n_timeout",
            "n_failed", "n_faults")}
        record["n_incidents"] = len(timeline_incidents)
        record["n_firing"] = sum(1 for inc in timeline_incidents
                                 if inc["firing_s"] is not None)
        for key in ("ttft_p50_s", "ttft_p95_s", "mean_itl_s",
                    "goodput_rps", "scheduler"):
            record[key] = base[key]
        devices.append(record)
    fleet_decisions: Dict[str, int] = {}
    for payload in payloads:
        for action, count in payload["decision_counts"].items():
            fleet_decisions[action] = fleet_decisions.get(action, 0) \
                + count
    report = {
        "schema": FLEET_SCHEMA,
        "seed": seed,
        "n_devices": len(specs),
        "devices": devices,
        "percentiles": {
            key: sketches[key].snapshot_percentiles()
            for key in sorted(sketches)
        },
        "sketches": {key: sketches[key].to_dict()
                     for key in sorted(sketches)},
        "scheduler": {
            "n_steps": sum(p["n_steps"] for p in payloads),
            "decision_counts": dict(sorted(fleet_decisions.items())),
        },
        "alerts": alerts,
    }
    if critpath:
        critpath_sketches = _merge_payload_critpath(payloads)
        report["critpath"] = {
            key: critpath_sketches[key].snapshot_percentiles()
            for key in sorted(critpath_sketches)
        }
    return report


def fleet_golden_json(seed: int = 42, workers: int = 1) -> str:
    """Canonical fleet report JSON — the determinism tripwire.

    Pinned to the legacy seed ladder: this string is what the committed
    golden artifacts and ``scripts/check_determinism.sh`` compare, so it
    must not move when the default fleet seeding does.
    """
    specs = default_fleet(seed=seed, seeding="legacy")
    return json.dumps(fleet_report(specs=specs, seed=seed,
                                   workers=workers), sort_keys=True)


def fleet_alerts_json(seed: int = 42,
                      indent: Optional[int] = None) -> str:
    """The default fleet's merged ``repro.alerts/v1`` document (legacy
    seeding, matching the golden report)."""
    specs = default_fleet(seed=seed, seeding="legacy")
    report = fleet_report(specs=specs, seed=seed)
    return json.dumps(report["alerts"], indent=indent, sort_keys=True)


# -- the seeded fault-storm scenario (the `monitor` subcommand) ---------------

def fault_storm_monitor(seed: int = 42, transient_rate: float = 0.35,
                        permanent_rate: float = 0.1) -> SloMonitor:
    """The golden two-tier stream under a fault storm, monitored.

    The acceptance scenario for burn-rate alerting: at storm-level fault
    rates the availability SLOs page (every firing incident cross-links
    the bad request tracks and fault draws in its window), and the
    timeline is a pure function of ``seed``.
    """
    monitor = SloMonitor(FLEET_SLOS)
    _run_two_tier(
        "priority", True, "Qwen1.5-1.8B", "Redmi K70 Pro",
        two_tier_arrivals(seed=seed),
        fault_spec=FaultSpec(transient_rate=transient_rate,
                             permanent_rate=permanent_rate,
                             seed=819),
        monitor=monitor,
    )
    return monitor


# -- tables -------------------------------------------------------------------

def fleet_percentile_table(report: dict) -> Table:
    """Merged fleet percentiles per (metric, tier)."""
    table = Table(
        title=f"Fleet percentiles — {report['n_devices']} devices "
              f"(seed={report['seed']})",
        columns=["metric", "count", "p50", "p90", "p95", "p99", "max"],
    )
    for key, snap in report["percentiles"].items():
        table.add_row(key, snap["count"], snap["p50"], snap["p90"],
                      snap["p95"], snap["p99"], snap["max"])
    table.add_note("percentiles come from merged per-device quantile "
                   "sketches — identical to sketching the pooled "
                   "samples, no raw latencies leave a device")
    return table


def fleet_latency_table(report: dict) -> Table:
    """Per-device user-visible latency scoreboard: TTFT percentiles,
    mean inter-token latency, and goodput (completed requests that met
    their tier's TTFT bound, per second of span)."""
    table = Table(
        title=f"Fleet TTFT/ITL/goodput — {report['n_devices']} devices "
              f"(seed={report['seed']})",
        columns=["device", "completed", "ttft p50 s", "ttft p95 s",
                 "mean itl s", "goodput req/s"],
    )
    for device in report["devices"]:
        table.add_row(
            f"{device['name']} ({device['device']})",
            device["n_completed"],
            device["ttft_p50_s"],
            device["ttft_p95_s"],
            device["mean_itl_s"],
            device["goodput_rps"],
        )
    table.add_note("TTFT is arrival to first token; goodput counts "
                   "completed requests whose TTFT met the tier bound "
                   "(interactive 4 s, background 30 s) — the same SLOs "
                   "the batching experiment gates on")
    return table


def fleet_compliance_table(report: dict) -> Table:
    """Fleet-wide SLO scoreboard + per-device incident counts."""
    table = Table(
        title=f"Fleet SLO compliance — {report['n_devices']} devices "
              f"(seed={report['seed']})",
        columns=["slo", "objective", "tier", "target", "events", "bad",
                 "good", "met", "incidents", "firing"],
    )
    incidents = report["alerts"]["incidents"]
    for slo in report["alerts"]["slos"]:
        n_inc = sum(1 for inc in incidents if inc["slo"] == slo["name"])
        n_fire = sum(1 for inc in incidents
                     if inc["slo"] == slo["name"]
                     and inc["firing_s"] is not None)
        table.add_row(slo["name"], slo["objective"], slo["tier"] or "*",
                      slo["target"], slo["n_events"], slo["n_bad"],
                      slo["good_fraction"], "yes" if slo["met"] else "NO",
                      n_inc, n_fire)
    for device in report["devices"]:
        table.add_note(
            f"{device['name']} ({device['device']}): "
            f"{device['n_completed']}/{device['n_requests']} completed, "
            f"{device['n_faults']} faults, {device['n_incidents']} "
            f"incidents ({device['n_firing']} fired)"
        )
    return table


def incident_table(alerts: dict, title: str = "Incident timeline") -> Table:
    """One row per incident of a ``repro.alerts/v1`` document."""
    table = Table(
        title=title,
        columns=["source", "slo", "rule", "sev", "state", "pending s",
                 "firing s", "resolved s", "peak burn", "links"],
    )
    for inc in alerts["incidents"]:
        table.add_row(inc.get("source", alerts.get("source", "-")),
                      inc["slo"], inc["rule"], inc["severity"],
                      inc["state"], inc["pending_s"], inc["firing_s"],
                      inc["resolved_s"], inc["peak_burn_rate"],
                      len(inc["links"]))
    if not alerts["incidents"]:
        table.add_note("no incidents — every burn-rate rule stayed "
                       "below threshold")
    return table


def fleet_scheduler_table(report: dict) -> Table:
    """Fleet scheduler health: per-device occupancy and starvation from
    the batched step probes, plus the fleet-wide decision mix."""
    table = Table(
        title=f"Fleet scheduler occupancy — {report['n_devices']} "
              f"devices (seed={report['seed']})",
        columns=["device", "steps", "batch tok mean", "batch tok p95",
                 "queue p95", "util p95", "starved"],
    )
    for device in report["devices"]:
        sched = device.get("scheduler", {})
        occupancy = sched.get("batch_tokens", {})
        depth = sched.get("queue_depth", {})
        util = sched.get("budget_utilization", {})
        table.add_row(
            device["name"], sched.get("n_steps", 0),
            occupancy.get("mean"), occupancy.get("p95"),
            depth.get("p95"), util.get("p95"),
            len(sched.get("starved", ())),
        )
    mix = report.get("scheduler", {}).get("decision_counts", {})
    if mix:
        table.add_note("fleet decision mix: " + ", ".join(
            f"{action}={count}" for action, count in mix.items()))
    table.add_note("occupancy and starvation come from each device's "
                   "batched step probe (golden batching config over its "
                   "seeded stream); the request path stays legacy")
    return table


def fleet_critpath_table(report: dict, top: int = 10) -> Table:
    """Top critical-path segments across the fleet, by total gated time.

    Requires a report built with ``critpath=True``; each row is one
    stage tag's merged sketch — count of requests it appeared on-path
    for, total seconds it gated, and the per-request distribution.
    """
    from repro.errors import ReproError
    if "critpath" not in report:
        raise ReproError(
            "fleet report has no critpath section — build it with "
            "fleet_report(..., critpath=True)")
    section = report["critpath"]
    table = Table(
        title=f"Fleet critical-path segments — {report['n_devices']} "
              f"devices (seed={report['seed']}), top {top} by gated time",
        columns=["stage", "requests", "total gated s", "mean s",
                 "p50 s", "p95 s", "max s"],
    )
    ranked = sorted(section, key=lambda key: (-section[key]["sum"], key))
    for key in ranked[:top]:
        snap = section[key]
        table.add_row(key.removeprefix("critpath."), snap["count"],
                      snap["sum"], snap["mean"], snap["p50"],
                      snap["p95"], snap["max"])
    if len(ranked) > top:
        table.add_note(f"{len(ranked) - top} further stages omitted")
    table.add_note("per-stage on-path seconds are sketched on-device "
                   "and merged exactly — the fleet sees which segments "
                   "gate completion without any raw path leaving a "
                   "device")
    return table


def fleet_slo(n_devices: int = 3, seed: int = 42,
              seeding: str = "legacy", workers: int = 1):
    """Experiment driver: fleet percentiles + per-device latency
    (TTFT/ITL/goodput) + compliance + incidents.

    Defaults to the legacy seed ladder — the committed ``BENCH_fleet_*``
    goldens pin this experiment's 3-device numbers."""
    report = fleet_report(
        specs=default_fleet(n_devices, seed=seed, seeding=seeding),
        seed=seed, workers=workers)
    return (fleet_percentile_table(report),
            fleet_latency_table(report),
            fleet_compliance_table(report),
            incident_table(report["alerts"],
                           title=f"Fleet incident timeline "
                                 f"(seed={seed})"))
