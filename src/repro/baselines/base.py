"""Common machinery for the baseline engines (§4.1).

Each baseline is modelled *structurally* over the same hardware simulator:
its processor choice, quantization layout, graph handling, and scheduling
discipline are implemented; what remains — kernel quality differences
between engines sharing a strategy (e.g. llama.cpp vs MNN on the same
CPU) — is captured by per-stage ``efficiency`` scalars calibrated against
the paper's published gaps (Figures 14–15, Table 5).  Every efficiency
constant is documented at its definition in the concrete engine modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.decode import DecodeOptions, decode_latency_s
from repro.core.results import InferenceReport, PrefillReport
from repro.errors import EngineError
from repro.hw.latency import (
    MatMulShape,
    attention_latency,
    matmul_latency,
    norm_latency,
    per_group_matmul_latency,
    quantize_latency,
)
from repro.hw.processor import DType, ProcessorSpec
from repro.hw.soc import SocSpec
from repro.model.config import ModelConfig


@dataclass(frozen=True)
class BaselineProfile:
    """Structural description of one baseline engine."""

    name: str
    prefill_proc: str
    decode_proc: str
    weight_dtype: DType = DType.INT8
    per_group: bool = False
    group_size: int = 32
    quantize_activations: bool = True
    prefill_efficiency: float = 1.0
    decode_efficiency: float = 1.0
    int8_weights_in_memory: bool = True

    def __post_init__(self) -> None:
        if self.prefill_efficiency <= 0 or self.decode_efficiency <= 0:
            raise EngineError(f"{self.name}: efficiencies must be positive")


class BaselineEngine:
    """A single-processor engine: whole-prompt prefill, serial decode.

    Mobile CPU/GPU engines process the prompt as one batch (no chunking —
    they have no static-shape constraint) and run every operator on their
    single compute processor, so prefill latency is the serial sum of the
    per-operator latencies divided by the engine's kernel efficiency.
    """

    def __init__(self, model: ModelConfig, device: SocSpec,
                 profile: BaselineProfile):
        self.model = model
        self.device = device
        self.profile = profile
        if profile.prefill_proc not in device.processors:
            raise EngineError(f"unknown processor {profile.prefill_proc!r}")
        self.proc: ProcessorSpec = device.processors[profile.prefill_proc]

    @property
    def name(self) -> str:
        return self.profile.name

    # -- prefill ---------------------------------------------------------------

    def _matmul_s(self, m: int, k: int, n: int) -> float:
        shape = MatMulShape(m, k, n)
        if self.profile.per_group:
            return per_group_matmul_latency(
                self.proc, shape, self.profile.group_size,
                self.profile.weight_dtype,
            )
        return matmul_latency(self.proc, shape, self.profile.weight_dtype)

    def prefill_latency_s(self, prompt_tokens: int) -> float:
        """Serial whole-prompt prefill on the engine's processor."""
        if prompt_tokens <= 0:
            raise EngineError("prompt_tokens must be positive")
        cfg = self.model
        m, h, f = prompt_tokens, cfg.hidden_size, cfg.ffn_hidden
        n_up = 2 if cfg.gated_ffn else 1
        per_layer = (
            self._matmul_s(m, h, cfg.q_dim)
            + 2 * self._matmul_s(m, h, cfg.kv_dim)
            + attention_latency(self.proc, m, m, cfg.n_heads,
                                cfg.dim_per_head)
            + self._matmul_s(m, cfg.q_dim, h)
            + n_up * self._matmul_s(m, h, f)
            + self._matmul_s(m, f, h)
            + 2 * norm_latency(self.proc, m, h)
        )
        if self.profile.quantize_activations:
            per_layer += 2 * quantize_latency(self.proc, m, h)
        total = cfg.n_layers * per_layer
        return total / self.profile.prefill_efficiency

    def prefill(self, prompt_tokens: int) -> PrefillReport:
        latency = self.prefill_latency_s(prompt_tokens)
        return PrefillReport(
            prompt_tokens=prompt_tokens,
            padded_tokens=0,
            n_chunks=1,
            latency_s=latency,
        )

    # -- decode ------------------------------------------------------------------

    def decode(self, prompt_tokens: int, output_tokens: int) -> float:
        options = DecodeOptions(
            backend=self.profile.decode_proc,
            weight_dtype=self.profile.weight_dtype,
            per_group=self.profile.per_group,
            group_size=self.profile.group_size,
            efficiency=self.profile.decode_efficiency,
        )
        proc = self.device.processors[self.profile.decode_proc]
        return decode_latency_s(self.model, proc, prompt_tokens,
                                output_tokens, options)

    # -- end-to-end ----------------------------------------------------------------

    def infer(self, prompt_tokens: int,
              output_tokens: int = 0) -> InferenceReport:
        prefill = self.prefill(prompt_tokens)
        decode_s = self.decode(prompt_tokens, output_tokens)
        energy_model = self.device.energy_model()
        busy: Dict[str, float] = {
            self.profile.prefill_proc: prefill.latency_s,
        }
        busy[self.profile.decode_proc] = (
            busy.get(self.profile.decode_proc, 0.0) + decode_s
        )
        makespan = prefill.latency_s + decode_s
        energy = energy_model.energy(busy, makespan)
        prefill_energy = energy_model.energy(
            {self.profile.prefill_proc: prefill.latency_s},
            prefill.latency_s,
        ).total_j
        return InferenceReport(
            engine=self.name,
            model=self.model.name,
            device=self.device.name,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            prefill=prefill,
            decode_latency_s=decode_s,
            energy=energy,
            memory_bytes=self.memory_bytes(prompt_tokens + output_tokens),
            extras={"prefill_energy_j": prefill_energy},
        )

    def memory_bytes(self, total_tokens: int) -> int:
        """Weights + one activation workspace + KV cache."""
        from repro.graph.memory_plan import kv_cache_bytes
        bpw = self.profile.weight_dtype.bytes
        weights = self.model.param_count(include_embeddings=False) * bpw
        workspace = (self.model.hidden_size + self.model.ffn_hidden) \
            * max(total_tokens, 1) * 4
        kv = kv_cache_bytes(self.model, max(total_tokens, 1))
        return int(weights + workspace + kv)
