"""The five baseline engines of the paper's evaluation (§4.1).

Each baseline is modelled by its *strategy* — processor, quantization
layout, graph handling, scheduling — over the same device cost models that
drive llm.npu.  Residual kernel-quality differences between engines that
share a strategy are one documented ``efficiency`` scalar per stage,
calibrated against two anchors:

* absolute throughputs the paper reports for the baselines themselves
  (Table 5: llama.cpp prefills Qwen1.5-1.8B at ~59 tok/s; TFLite decodes
  Gemma-2B at ~60-90 ms/token; ...), and
* the relative gaps of Figure 14 (prompt 1024, Redmi K70 Pro):
  llama.cpp-CPU 18.2-38.4x slower than llm.npu, MNN-CPU 7.3x,
  MLC-GPU 32.5-43.6x, TFLite-GPU 1.27-2.34x, PowerInfer-V2 3.28-5.32x.
"""

from __future__ import annotations

from typing import Union

from repro.baselines.base import BaselineEngine, BaselineProfile
from repro.core.engine import EngineConfig, LlmNpuEngine
from repro.core.results import InferenceReport, PrefillReport
from repro.errors import EngineError
from repro.hw.processor import DType
from repro.hw.soc import SocSpec, get_device
from repro.model.config import ModelConfig, get_model_config


def _resolve(model, device):
    if isinstance(model, str):
        model = get_model_config(model)
    if isinstance(device, str):
        device = get_device(device)
    return model, device


class LlamaCppEngine(BaselineEngine):
    """llama.cpp: CPU-only, K-Quant per-group INT8.

    Prefill efficiency 0.42: llama.cpp's K-Quant path dequantizes weights
    on the fly inside the GEMM micro-kernel rather than running a clean
    INT8 GEMM, reaching less than half of the device's Table 3 INT8
    throughput — calibrated so Qwen1.5-1.8B prefills at the ~59 tok/s the
    paper's Table 5 measures for llama.cpp on the Redmi K70 Pro.
    """

    def __init__(self, model, device):
        model, device = _resolve(model, device)
        super().__init__(model, device, BaselineProfile(
            name="llama.cpp-CPU",
            prefill_proc="cpu",
            decode_proc="cpu",
            per_group=True,
            group_size=32,
            prefill_efficiency=0.42,
            decode_efficiency=1.0,
        ))


class MnnEngine(BaselineEngine):
    """MNN: CPU-only, per-tensor INT8 with heavily optimized GEMM kernels.

    Prefill efficiency 0.85 (near the Table 3 CPU INT8 envelope — MNN's
    hand-written assembly kernels are the best mobile-CPU GEMMs around),
    making it ~2.5x faster than llama.cpp at prefill, the gap the paper
    shows in Fig. 14.  Decode efficiency 0.4: Table 5 shows MNN decoding
    2-3x *slower* than llama.cpp (its runtime is optimized for batched
    vision workloads, not autoregressive GEMV).
    """

    def __init__(self, model, device):
        model, device = _resolve(model, device)
        super().__init__(model, device, BaselineProfile(
            name="MNN-CPU",
            prefill_proc="cpu",
            decode_proc="cpu",
            per_group=False,
            prefill_efficiency=0.85,
            decode_efficiency=0.4,
        ))


class TfliteEngine(BaselineEngine):
    """TFLite: GPU FP16 delegate.

    Efficiency 1.25 — the GPU FP16 profile is fitted against the paper's
    Table 3 single-MatMul measurements; TFLite's delegate additionally
    fuses activations/norms into the GEMM kernels and pipelines weight
    uploads, buying ~25% over the isolated-op envelope.  This is the strongest baseline (Fig. 14: only 1.3-2.3x
    behind llm.npu) and also the decode-speed leader among baselines.
    """

    def __init__(self, model, device):
        model, device = _resolve(model, device)
        super().__init__(model, device, BaselineProfile(
            name="TFLite-GPU",
            prefill_proc="gpu",
            decode_proc="gpu",
            weight_dtype=DType.FP16,
            quantize_activations=False,
            prefill_efficiency=1.25,
            decode_efficiency=1.0,
        ))


class MlcEngine(BaselineEngine):
    """MLC-LLM: GPU via TVM-compiled kernels.

    Prefill efficiency 0.068: MLC's auto-generated OpenCL kernels achieve
    a small fraction of the Adreno's envelope on these GEMM shapes
    (the paper measures MLC 14-19x slower than TFLite on the same GPU:
    Fig. 14 shows 32.5-43.6x vs llm.npu where TFLite is 1.3-2.3x).
    Decode efficiency 1.2: Table 5 shows MLC decoding slightly *faster*
    than llama.cpp (0.17 s vs 0.24 s for the same samples) — GEMV
    compiles well.
    """

    def __init__(self, model, device):
        model, device = _resolve(model, device)
        super().__init__(model, device, BaselineProfile(
            name="MLC-GPU",
            prefill_proc="gpu",
            decode_proc="gpu",
            weight_dtype=DType.FP16,
            quantize_activations=False,
            prefill_efficiency=0.068,
            decode_efficiency=1.2,
        ))


class PowerInferV2Engine:
    """PowerInfer-V2: NPU prefill without llm.npu's techniques (§6).

    Modelled structurally as chunked NPU prefill with per-group (g=128)
    quantization — PI-v2 keeps accuracy with group-quantized weights, so
    its NPU MatMuls pay the sub-MatMul decomposition penalty — and coarse
    chunk-order pipelining (no fine-grained out-of-order subgraph
    scheduling and no Eq. 5 heuristic).
    The paper measures llm.npu 3.28-5.32x faster at prefill and ~equal at
    decode (both use a CPU decode backend).
    """

    name = "PowerInfer-V2-NPU"

    def __init__(self, model, device):
        model, device = _resolve(model, device)
        self.model = model
        self.device = device
        self._inner = LlmNpuEngine(model, device, EngineConfig(
            chunking=True,
            quant_mode="per-group",
            group_size=128,
            policy="chunk-order",  # coarse pipelining, no fine-grained OOO
            equivalent_shapes=False,
        ))

    def prefill(self, prompt_tokens: int) -> PrefillReport:
        return self._inner.prefill(prompt_tokens)

    def decode(self, prompt_tokens: int, output_tokens: int) -> float:
        # CPU decode backend, like llm.npu's prototype (and llama.cpp).
        from repro.core.decode import DecodeOptions, decode_latency_s
        return decode_latency_s(
            self.model, self.device.cpu, prompt_tokens, output_tokens,
            DecodeOptions(backend="cpu", efficiency=0.9),
        )

    def infer(self, prompt_tokens: int,
              output_tokens: int = 0) -> InferenceReport:
        report = self._inner.infer(prompt_tokens, output_tokens)
        decode_s = self.decode(prompt_tokens, output_tokens)
        return InferenceReport(
            engine=self.name,
            model=report.model,
            device=report.device,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            prefill=report.prefill,
            decode_latency_s=decode_s,
            energy=report.energy,
            memory_bytes=report.memory_bytes,
            extras=report.extras,
        )


class NaiveNpuEngine(LlmNpuEngine):
    """Direct NPU offload with none of llm.npu's techniques (Fig. 19's
    second bar): monolithic prompt graph re-built/re-optimized per prompt,
    per-group quantization for accuracy, in-order execution."""

    name = "Naive-NPU"

    def __init__(self, model, device):
        model, device = _resolve(model, device)
        super().__init__(model, device, EngineConfig(
            chunking=False,
            quant_mode="per-group",
            policy="in-order",
            equivalent_shapes=False,
        ))


#: Baseline registry for the evaluation drivers.
BASELINES = {
    "llama.cpp-CPU": LlamaCppEngine,
    "MNN-CPU": MnnEngine,
    "TFLite-GPU": TfliteEngine,
    "MLC-GPU": MlcEngine,
    "PowerInfer-V2-NPU": PowerInferV2Engine,
}


def make_baseline(name: str, model: Union[str, ModelConfig],
                  device: Union[str, SocSpec]):
    """Instantiate a baseline engine by name."""
    try:
        cls = BASELINES[name]
    except KeyError:
        raise EngineError(
            f"unknown baseline {name!r}; available: {sorted(BASELINES)}"
        ) from None
    return cls(model, device)
