"""Baseline inference engines for the paper's comparisons."""

from repro.baselines.base import BaselineEngine, BaselineProfile
from repro.baselines.engines import (
    BASELINES,
    LlamaCppEngine,
    MlcEngine,
    MnnEngine,
    NaiveNpuEngine,
    PowerInferV2Engine,
    TfliteEngine,
    make_baseline,
)

__all__ = [
    "BaselineEngine",
    "BaselineProfile",
    "BASELINES",
    "make_baseline",
    "LlamaCppEngine",
    "MnnEngine",
    "TfliteEngine",
    "MlcEngine",
    "PowerInferV2Engine",
    "NaiveNpuEngine",
]
