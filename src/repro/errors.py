"""Exception hierarchy for the llm.npu reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Sub-hierarchies mirror the package layout: model
construction, quantization, hardware simulation, graph building, and engine
execution each raise their own error type.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class ModelError(ReproError):
    """Model construction or forward-pass failure."""


class ShapeError(ModelError):
    """Tensor shape mismatch inside the numpy transformer substrate."""


class QuantizationError(ReproError):
    """Quantization algorithm failure (bad calibration, bad bit-width...)."""


class CalibrationError(QuantizationError):
    """Calibration observers were not run or produced unusable statistics."""


class HardwareError(ReproError):
    """Hardware simulator failure."""


class UnsupportedOperationError(HardwareError):
    """An operation was dispatched to a processor that cannot run it.

    Example: per-group MatMul dispatched directly to a mobile NPU, which
    (per Table 2 of the paper) no mainstream mobile NPU supports.
    """


class MemoryLimitError(HardwareError):
    """A memory space (e.g. the 4 GB NPU-addressable region) overflowed."""


class GraphError(ReproError):
    """Compute-graph construction or partitioning failure."""


class DependencyError(GraphError):
    """The subgraph dependency DAG is cyclic or references unknown nodes."""


class SchedulingError(ReproError):
    """The scheduler could not produce a valid execution order."""


class EngineError(ReproError):
    """Top-level engine failure (prefill/decode pipeline)."""


class TransientEngineError(EngineError):
    """A recoverable engine failure (e.g. a driver-level graph-submit
    hiccup).  The service layer retries these with bounded backoff."""


class PermanentEngineError(EngineError):
    """An unrecoverable engine failure.  Retrying cannot help; the
    service layer fails the request immediately."""


class WorkloadError(ReproError):
    """Synthetic workload generation failure."""
