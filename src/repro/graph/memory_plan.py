"""Graph memory accounting (§3.2 and Fig. 17).

Loading multiple pre-built chunk graphs naively duplicates every
subgraph's activation buffers per chunk position — the 2–4× overhead the
paper measures — while the chunk-sharing graph keeps one copy of each
static subgraph and only duplicates the (weight-less) attention subgraphs.
This module computes both numbers, plus the engine-level totals used by
the Fig. 17 memory comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.chunk import ChunkSharingGraph
from repro.model.config import ModelConfig


@dataclass(frozen=True)
class GraphMemoryPlan:
    """Byte totals for one engine configuration."""

    weights_bytes: int
    shared_activation_bytes: int
    dynamic_activation_bytes: int
    kv_cache_bytes: int
    shadow_weights_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return (self.weights_bytes + self.shared_activation_bytes
                + self.dynamic_activation_bytes + self.kv_cache_bytes
                + self.shadow_weights_bytes)

    @property
    def activation_bytes(self) -> int:
        return self.shared_activation_bytes + self.dynamic_activation_bytes


def kv_cache_bytes(config: ModelConfig, tokens: int,
                   bytes_per_value: int = 2) -> int:
    """KV cache footprint for ``tokens`` cached positions (FP16)."""
    if tokens < 0:
        raise GraphError(f"negative token count {tokens}")
    return (2 * tokens * config.n_layers * config.kv_dim * bytes_per_value)


def plan_chunk_sharing(graph: ChunkSharingGraph,
                       prompt_len: int,
                       shadow_weights_bytes: int = 0) -> GraphMemoryPlan:
    """Memory plan under the chunk-sharing strategy (llm.npu)."""
    plan0 = graph.plan_for_chunk(0)
    weights = sum(s.weight_bytes for s in plan0.subgraphs)
    shared_act = sum(
        s.activation_bytes for s in plan0.subgraphs if s.static
    )
    # One dynamic (attention) subgraph instance per chunk position, with
    # buffers sized for that position's KV length.
    dynamic_act = 0
    for i in range(graph.max_chunks):
        plan = graph.plan_for_chunk(i)
        dynamic_act += sum(
            s.activation_bytes for s in plan.subgraphs if not s.static
        )
    kv = kv_cache_bytes(graph.builder.config, prompt_len)
    return GraphMemoryPlan(
        weights_bytes=weights,
        shared_activation_bytes=shared_act,
        dynamic_activation_bytes=dynamic_act,
        kv_cache_bytes=kv,
        shadow_weights_bytes=shadow_weights_bytes,
    )


def plan_naive_chunk_graphs(graph: ChunkSharingGraph,
                            prompt_len: int) -> GraphMemoryPlan:
    """Memory plan when every chunk position holds a full graph copy.

    Weights are still shared (they are immutable device buffers); what
    multiplies is every subgraph's activation workspace — which is exactly
    what the paper observed costing 2–4x the LLM weights.
    """
    total_act = 0
    for i in range(graph.max_chunks):
        plan = graph.plan_for_chunk(i)
        total_act += sum(s.activation_bytes for s in plan.subgraphs)
    plan0 = graph.plan_for_chunk(0)
    weights = sum(s.weight_bytes for s in plan0.subgraphs)
    kv = kv_cache_bytes(graph.builder.config, prompt_len)
    return GraphMemoryPlan(
        weights_bytes=weights,
        shared_activation_bytes=0,
        dynamic_activation_bytes=total_act,
        kv_cache_bytes=kv,
    )


def sharing_saving_fraction(graph: ChunkSharingGraph,
                            prompt_len: int) -> float:
    """Fraction of activation memory saved by chunk sharing (up to ~75%)."""
    shared = plan_chunk_sharing(graph, prompt_len)
    naive = plan_naive_chunk_graphs(graph, prompt_len)
    if naive.activation_bytes == 0:
        return 0.0
    return 1.0 - shared.activation_bytes / naive.activation_bytes
