"""Operator and subgraph IR for the execution engines.

The unit of scheduling in llm.npu is the *subgraph* (§3.4): a contiguous
run of operators with a single backend affinity.  A transformer block
splits into six subgraphs — the granularity that reproduces the paper's
"120 out of 144 subgraphs can be shared" measurement on Qwen1.5-1.8B
(24 blocks × 6 subgraphs, with only the attention subgraph per block being
dynamic):

====  =====  ========================================  =======  ========
idx   proc   contents                                  dtype    static?
====  =====  ========================================  =======  ========
0     CPU    pre-attention norm + activation quantize  float    yes
1     NPU    Q/K/V linear projections                  int8     yes
2     CPU    RoPE + attention + dequant glue           float    **no**
3     NPU    output (O) projection                     int8     yes
4     CPU    residual add + FFN norm + quantize        float    yes
5     NPU    FFN (gate/up, activation, down)           int8     yes
====  =====  ========================================  =======  ========

Only subgraph 2 depends on the chunk *position* (its KV length grows with
the chunk index); every other subgraph depends only on the chunk length
and is shared across chunks by the chunk-sharing graph (§3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import GraphError


class OpKind(enum.Enum):
    """Operator categories with distinct cost models."""

    LINEAR = "linear"
    ATTENTION = "attention"
    NORM = "norm"
    ACTIVATION = "activation"
    QUANTIZE = "quantize"
    DEQUANTIZE = "dequantize"
    ROPE = "rope"
    ADD = "add"
    SHADOW_MATMUL = "shadow_matmul"
    SYNC = "sync"


class Backend(enum.Enum):
    """Which processor class a subgraph is affine to."""

    NPU = "npu"
    FLOAT = "float"  # CPU or GPU, decided by the engine configuration


@dataclass(frozen=True)
class OpSpec:
    """One operator inside a subgraph.

    ``shape`` is operator-specific: ``(m, k, n)`` for linears,
    ``(q_len, kv_len)`` for attention, ``(rows, width)`` for vector ops.
    """

    kind: OpKind
    shape: Tuple[int, ...]
    weight_bytes: int = 0

    def __post_init__(self) -> None:
        if any(s < 0 for s in self.shape):
            raise GraphError(f"negative dimension in {self.kind}: {self.shape}")

    @property
    def matmul_ops(self) -> float:
        """Arithmetic MatMul work of this operator (2·M·K·N MAC pairs).

        Only operators whose shape is a full ``(m, k, n)`` product carry
        MatMul work; vector/attention operators return 0 (their shapes
        don't determine a flop count without the model config).  This is
        the numerator of the roofline analysis in
        :mod:`repro.obs.profile` — achieved ops/s over a processor's
        Table-3-calibrated ``peak_ops``.
        """
        if self.kind in (OpKind.LINEAR, OpKind.SHADOW_MATMUL) \
                and len(self.shape) == 3:
            m, k, n = self.shape
            return 2.0 * m * k * n
        return 0.0


#: Subgraph position indices within a block, named for readability.
SG_PRE_ATTN, SG_QKV, SG_ATTN, SG_WO, SG_PRE_FFN, SG_FFN = range(6)

#: Subgraphs per transformer block.
SUBGRAPHS_PER_BLOCK = 6

#: Which subgraph positions run on the NPU.
NPU_POSITIONS = frozenset({SG_QKV, SG_WO, SG_FFN})

#: Which subgraph positions are dynamic (depend on the chunk index).
DYNAMIC_POSITIONS = frozenset({SG_ATTN})


@dataclass(frozen=True)
class SubgraphSpec:
    """A scheduling unit: its ops, backend, and pre-computed latency.

    ``layer`` and ``position`` locate it inside the model; ``static`` is
    the §3.2 shareability property (independent of the chunk index).
    """

    layer: int
    position: int
    backend: Backend
    ops: Tuple[OpSpec, ...]
    latency_s: float
    static: bool
    weight_bytes: int = 0
    activation_bytes: int = 0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise GraphError(
                f"subgraph l{self.layer}p{self.position}: negative latency"
            )
        if not 0 <= self.position < SUBGRAPHS_PER_BLOCK:
            raise GraphError(f"invalid subgraph position {self.position}")

    @property
    def name(self) -> str:
        return f"l{self.layer}.sg{self.position}"

    @property
    def is_npu(self) -> bool:
        return self.backend is Backend.NPU

    def op_count(self) -> int:
        return len(self.ops)

    @property
    def matmul_ops(self) -> float:
        """Total MatMul arithmetic work of the subgraph (see
        :attr:`OpSpec.matmul_ops`)."""
        return sum(op.matmul_ops for op in self.ops)


@dataclass(frozen=True)
class ShadowSpec:
    """The CPU-side shadow work attached to one NPU subgraph (§3.3).

    ``matmul_s`` is the sparse outlier MatMul time, ``sync_s`` the
    CPU↔NPU merge synchronization, ``disk_s`` any cold-weight retrieval.
    All three are zero when the layer's outliers were pruned.
    """

    layer: int
    position: int
    matmul_s: float
    sync_s: float
    disk_s: float = 0.0
    matmul_ops: float = 0.0

    @property
    def enabled(self) -> bool:
        return self.matmul_s > 0 or self.sync_s > 0

    @property
    def total_s(self) -> float:
        return self.matmul_s + self.sync_s + self.disk_s
