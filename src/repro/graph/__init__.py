"""Compute-graph layer: operator IR, subgraph partitioning, chunk-sharing
graphs (§3.2), equivalent-shape optimization, and memory planning."""

from repro.graph.builder import (
    BuildOptions,
    ChunkPlan,
    GraphBuilder,
    ShadowProfile,
)
from repro.graph.chunk import (
    ChunkSharingGraph,
    SharingStats,
    chunk_token_lengths,
    n_chunks_for,
    padded_tokens,
)
from repro.graph.memory_plan import (
    GraphMemoryPlan,
    kv_cache_bytes,
    plan_chunk_sharing,
    plan_naive_chunk_graphs,
    sharing_saving_fraction,
)
from repro.graph.ops import (
    Backend,
    DYNAMIC_POSITIONS,
    NPU_POSITIONS,
    OpKind,
    OpSpec,
    SG_ATTN,
    SG_FFN,
    SG_PRE_ATTN,
    SG_PRE_FFN,
    SG_QKV,
    SG_WO,
    SUBGRAPHS_PER_BLOCK,
    ShadowSpec,
    SubgraphSpec,
)
from repro.graph.shapes import (
    MAX_SQUARE_SPEEDUP,
    best_equivalent_shape,
    equivalent_shape_gain,
    factor_pairs,
    shape_speedup,
)

__all__ = [
    "GraphBuilder",
    "BuildOptions",
    "ChunkPlan",
    "ShadowProfile",
    "ChunkSharingGraph",
    "SharingStats",
    "chunk_token_lengths",
    "n_chunks_for",
    "padded_tokens",
    "GraphMemoryPlan",
    "kv_cache_bytes",
    "plan_chunk_sharing",
    "plan_naive_chunk_graphs",
    "sharing_saving_fraction",
    "OpKind",
    "OpSpec",
    "Backend",
    "SubgraphSpec",
    "ShadowSpec",
    "SUBGRAPHS_PER_BLOCK",
    "NPU_POSITIONS",
    "DYNAMIC_POSITIONS",
    "SG_PRE_ATTN",
    "SG_QKV",
    "SG_ATTN",
    "SG_WO",
    "SG_PRE_FFN",
    "SG_FFN",
    "factor_pairs",
    "shape_speedup",
    "best_equivalent_shape",
    "equivalent_shape_gain",
    "MAX_SQUARE_SPEEDUP",
]
