"""Equivalent-shape optimization for NPU linear layers (§4, note (1)).

Mobile NPUs favour CNN-like tensor shapes: a linear layer produces the
same result for an input viewed as ``(M, 1, K)`` or ``(a, b, K)`` with
``a*b = M``, but square-ish views run measurably faster — the paper
reports 1.62× for ``32x32x2048`` vs ``1024x1x2048``.  llm.npu profiles
all equivalent shapes at preparation time and picks the fastest; this
module reproduces that choice analytically.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.errors import GraphError

#: Paper-measured maximum speedup of a perfectly square view over the
#: degenerate (M, 1) view.
MAX_SQUARE_SPEEDUP = 1.62


def factor_pairs(m: int) -> List[Tuple[int, int]]:
    """All ``(a, b)`` with ``a * b == m`` and ``a <= b``."""
    if m <= 0:
        raise GraphError(f"row count must be positive, got {m}")
    pairs = []
    for a in range(1, int(math.isqrt(m)) + 1):
        if m % a == 0:
            pairs.append((a, m // a))
    return pairs


def shape_speedup(a: int, b: int) -> float:
    """Speedup of viewing ``a*b`` rows as an ``(a, b)`` tile.

    1.0 for the degenerate ``(1, M)`` view, rising to
    :data:`MAX_SQUARE_SPEEDUP` for a perfect square, interpolated by the
    square root of the aspect balance (``min/max``) — matching the paper's
    single published data point while behaving smoothly in between.
    """
    if a <= 0 or b <= 0:
        raise GraphError(f"tile dims must be positive, got ({a}, {b})")
    balance = min(a, b) / max(a, b)
    return 1.0 + (MAX_SQUARE_SPEEDUP - 1.0) * math.sqrt(balance)


def best_equivalent_shape(m: int) -> Tuple[int, int]:
    """The fastest ``(a, b)`` view of ``m`` rows (what llm.npu profiles)."""
    return max(factor_pairs(m), key=lambda ab: shape_speedup(*ab))


def equivalent_shape_gain(m: int) -> float:
    """Speedup from the best equivalent shape for ``m`` rows.

    Powers of two and other highly composite row counts (like the default
    chunk length 256 = 16x16) achieve the full square speedup; primes get
    nothing — one more reason chunk lengths are chosen as powers of two.
    """
    a, b = best_equivalent_shape(m)
    return shape_speedup(a, b)
