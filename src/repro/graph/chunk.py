"""Chunk-sharing graph construction and accounting (§3.2).

Three strategies for handling variable-length prompts on a static-shape
NPU, mirroring Figure 7:

* **prompt graph** — one graph per prompt length, re-built and re-optimized
  for every request (the naive baseline; costs tens of seconds);
* **chunk graphs** — pre-built fixed-length chunk graphs, one complete
  graph per chunk position (fast, but memory scales with the number of
  chunk positions because every subgraph is duplicated);
* **chunk-sharing graph** — static subgraphs built once and shared across
  chunk positions; only the dynamic (attention) subgraphs are
  per-position.  This is llm.npu's design: for Qwen1.5-1.8B it shares 120
  of 144 subgraphs and cuts graph memory by up to 75%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import GraphError
from repro.graph.builder import ChunkPlan, GraphBuilder
from repro.graph.ops import DYNAMIC_POSITIONS, SUBGRAPHS_PER_BLOCK


def n_chunks_for(prompt_len: int, chunk_len: int) -> int:
    """Number of fixed-size chunks covering a prompt (last one padded)."""
    if prompt_len <= 0 or chunk_len <= 0:
        raise GraphError(
            f"invalid prompt/chunk length {prompt_len}/{chunk_len}"
        )
    return math.ceil(prompt_len / chunk_len)


def padded_tokens(prompt_len: int, chunk_len: int) -> int:
    """Wasted (padding) token slots for the final partial chunk."""
    return n_chunks_for(prompt_len, chunk_len) * chunk_len - prompt_len


def chunk_token_lengths(prompt_len: int, chunk_len: int,
                        cached_tokens: int = 0) -> List[int]:
    """New-token count attributed to each chunk pass of a prefill.

    This is the token-accounting twin of :meth:`ChunkSharingGraph.
    plans_for_prompt`: entry ``i`` is how many of the prompt's *new*
    tokens chunk pass ``i`` processes (padding slots are excluded — the
    list always sums to ``prompt_len`` exactly, which is the
    conservation invariant the step-loop batcher relies on).  With
    ``cached_tokens`` from earlier turns, a partial trailing cache
    chunk is re-prefilled together with the first new tokens, so the
    first entry is shortened by the cache remainder.

    Edge cases the batcher feeds through here: a prompt shorter than
    one chunk (one entry, the prompt itself), a prompt that is an exact
    multiple of the chunk length (all entries equal ``chunk_len``), and
    a single-token tail chunk (last entry 1).
    """
    if prompt_len <= 0 or chunk_len <= 0:
        raise GraphError(
            f"invalid prompt/chunk length {prompt_len}/{chunk_len}"
        )
    if cached_tokens < 0:
        raise GraphError(f"negative cached_tokens {cached_tokens}")
    remainder = cached_tokens % chunk_len
    lengths = [min(prompt_len, chunk_len - remainder)]
    left = prompt_len - lengths[0]
    while left > 0:
        take = min(chunk_len, left)
        lengths.append(take)
        left -= take
    return lengths


@dataclass(frozen=True)
class SharingStats:
    """Shared-vs-dynamic subgraph accounting for a max chunk count."""

    n_layers: int
    max_chunks: int
    shared_subgraphs: int
    dynamic_subgraphs: int

    @property
    def total_subgraph_instances(self) -> int:
        """Graph instances kept in memory under chunk-sharing."""
        return self.shared_subgraphs + self.dynamic_subgraphs

    @property
    def naive_subgraph_instances(self) -> int:
        """Graph instances if every chunk position had a full copy."""
        return self.n_layers * SUBGRAPHS_PER_BLOCK * self.max_chunks

    @property
    def shared_fraction(self) -> float:
        per_prompt = self.n_layers * SUBGRAPHS_PER_BLOCK
        return self.shared_subgraphs / per_prompt


class ChunkSharingGraph:
    """Pre-built chunk-sharing graph set for a (model, device) pair.

    ``max_chunks`` bounds the supported prompt length
    (``max_chunks * chunk_len`` tokens); dynamic attention subgraphs exist
    per chunk position, static subgraphs exist once.
    """

    def __init__(self, builder: GraphBuilder, chunk_len: int,
                 max_chunks: int,
                 shadow_profiles: Optional[Dict] = None):
        if max_chunks <= 0:
            raise GraphError(f"max_chunks must be positive, got {max_chunks}")
        self.builder = builder
        self.chunk_len = chunk_len
        self.max_chunks = max_chunks
        self.shadow_profiles = shadow_profiles
        self._plans: List[ChunkPlan] = [
            builder.build_chunk(i, chunk_len, shadow_profiles)
            for i in range(max_chunks)
        ]

    def plan_for_chunk(self, chunk_index: int) -> ChunkPlan:
        if not 0 <= chunk_index < self.max_chunks:
            raise GraphError(
                f"chunk {chunk_index} beyond max_chunks {self.max_chunks}"
            )
        return self._plans[chunk_index]

    def plans_for_prompt(self, prompt_len: int,
                         cached_tokens: int = 0) -> List[ChunkPlan]:
        """The chunk plans needed to prefill ``prompt_len`` new tokens.

        ``cached_tokens`` is the KV-cache length already established by
        earlier turns.  Static shapes force chunk-aligned reuse: only the
        fully-populated cache chunks are skipped; a partial trailing chunk
        must be re-prefilled together with the new tokens (its graph slot
        processes full chunks only).
        """
        if cached_tokens < 0:
            raise GraphError(f"negative cached_tokens {cached_tokens}")
        reused_chunks = cached_tokens // self.chunk_len
        remainder = cached_tokens - reused_chunks * self.chunk_len
        n = n_chunks_for(prompt_len + remainder, self.chunk_len)
        if reused_chunks + n > self.max_chunks:
            raise GraphError(
                f"prompt of {prompt_len} tokens on {cached_tokens} cached "
                f"needs chunks {reused_chunks}..{reused_chunks + n - 1}; "
                f"graph was prepared for {self.max_chunks}"
            )
        return self._plans[reused_chunks: reused_chunks + n]

    # -- sharing accounting -------------------------------------------------

    def sharing_stats(self) -> SharingStats:
        n_layers = self.builder.config.n_layers
        static_per_prompt = n_layers * (SUBGRAPHS_PER_BLOCK
                                        - len(DYNAMIC_POSITIONS))
        dynamic = n_layers * len(DYNAMIC_POSITIONS) * self.max_chunks
        return SharingStats(
            n_layers=n_layers,
            max_chunks=self.max_chunks,
            shared_subgraphs=static_per_prompt,
            dynamic_subgraphs=dynamic,
        )

    # -- preparation cost -----------------------------------------------------

    def preparation_s(self) -> float:
        """One-time build+optimize cost of all graphs (preparation stage).

        Static subgraphs are built once; each dynamic subgraph per chunk
        position is built separately (they are small — attention has no
        weights, so their graphs are just activation plumbing).
        """
        cost = self.builder.device.graph_cost
        plan0 = self._plans[0]
        static_ops = sum(s.op_count() for s in plan0.subgraphs if s.static)
        dynamic_ops = sum(
            s.op_count() for s in plan0.subgraphs if not s.static
        )
        total = cost.prepare_s(max(static_ops, 1))
        for _ in range(self.max_chunks):
            total += (cost.build_s(max(dynamic_ops, 1))
                      + cost.optimize_s(max(dynamic_ops, 1)))
        return total

    def naive_per_prompt_preparation_s(self) -> float:
        """Re-build + re-optimize cost a naive engine pays per prompt."""
        cost = self.builder.device.graph_cost
        plan0 = self._plans[0]
        all_ops = sum(s.op_count() for s in plan0.subgraphs)
        return cost.prepare_s(all_ops)
