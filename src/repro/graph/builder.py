"""Builds the subgraph-level execution plan for one chunk of prefill.

Given a model config, a device, a chunk length and a chunk index, the
builder emits the six :class:`SubgraphSpec` per transformer block (see
:mod:`repro.graph.ops`) with latencies computed from the device's cost
models, plus the per-NPU-subgraph :class:`ShadowSpec` describing the
shadow outlier work (§3.3) for unpruned layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.hw.dma import DmaConfig
from repro.hw.latency import (
    NPU_GRAPH_NODE_OVERHEAD_S,
    MatMulShape,
    attention_latency,
    disk_read_latency,
    matmul_latency,
    norm_latency,
    per_group_matmul_latency,
    quantize_latency,
    shadow_matmul_latency,
    sync_latency,
)
from repro.hw.processor import DType, ProcessorSpec
from repro.hw.soc import SocSpec
from repro.graph.ops import (
    Backend,
    OpKind,
    OpSpec,
    SG_ATTN,
    SG_FFN,
    SG_PRE_ATTN,
    SG_PRE_FFN,
    SG_QKV,
    SG_WO,
    ShadowSpec,
    SubgraphSpec,
)
from repro.graph.shapes import equivalent_shape_gain
from repro.model.config import ModelConfig


@dataclass(frozen=True)
class ShadowProfile:
    """Per-layer shadow-execution parameters from calibration (§3.3)."""

    outlier_channels: int = 8
    pruned: bool = False
    hot_hit_rate: float = 1.0
    cold_bytes_per_miss: int = 0


@dataclass(frozen=True)
class BuildOptions:
    """Knobs for the graph builder.

    ``float_backend`` selects where float subgraphs run: 'cpu' or 'gpu'
    (the Fig. 18 coordination comparison), or 'npu' — the §5 what-if where
    a mixed-precision NPU runs its own float operators (catastrophic on
    today's Hexagon FP16 path, viable on a hypothetical FP16-strong NPU).  ``weight_dtype`` / the quant
    layout control the NPU MatMul cost (per-group triggers the Fig. 4
    decomposition penalty).  ``equivalent_shapes`` applies the §4
    shape-profiling speedup to NPU linears.
    """

    float_backend: str = "cpu"
    weight_dtype: DType = DType.INT8
    per_group: bool = False
    group_size: int = 32
    equivalent_shapes: bool = True
    #: Opt-in explicit DMA/compute-overlap model for NPU weight streaming
    #: (:mod:`repro.hw.dma`).  ``None`` keeps the legacy per-profile
    #: ``combine`` rule — all golden artifacts are built with ``None``.
    dma: Optional[DmaConfig] = None

    def __post_init__(self) -> None:
        if self.float_backend not in ("cpu", "gpu", "npu"):
            raise GraphError(
                f"float_backend must be 'cpu', 'gpu' or 'npu', "
                f"got {self.float_backend!r}"
            )


@dataclass
class ChunkPlan:
    """The execution plan for one chunk: subgraphs plus shadow specs."""

    chunk_index: int
    chunk_len: int
    kv_len: int
    subgraphs: List[SubgraphSpec]
    shadows: Dict[Tuple[int, int], ShadowSpec] = field(default_factory=dict)

    def subgraph(self, layer: int, position: int) -> SubgraphSpec:
        return self.subgraphs[layer * 6 + position]

    def npu_latency_s(self) -> float:
        return sum(s.latency_s for s in self.subgraphs if s.is_npu)

    def float_latency_s(self) -> float:
        return sum(s.latency_s for s in self.subgraphs if not s.is_npu)


#: Process-wide graph-cache telemetry (all builders), for
#: :func:`graph_cache_stats`.  Per-registry counters are attached with
#: :meth:`GraphBuilder.attach_metrics`.
_CACHE_HITS = 0
_CACHE_MISSES = 0


def graph_cache_stats() -> Dict[str, int]:
    """Process-wide chunk-plan cache hit/miss counts."""
    return {"hits": _CACHE_HITS, "misses": _CACHE_MISSES}


def reset_graph_cache_stats() -> None:
    global _CACHE_HITS, _CACHE_MISSES
    _CACHE_HITS = 0
    _CACHE_MISSES = 0


class GraphBuilder:
    """Computes subgraph latencies for a (model, device, options) triple.

    Chunk plans are memoized per builder: within one builder the
    (config, device, options) triple is fixed, so a plan is a pure
    function of ``(chunk_index, chunk_len, shadow_profiles)`` — and the
    step loop asks for the same shapes over and over (every request
    replays the same chunk ladder).  Cache hits return a shallow copy
    (fresh ``subgraphs`` list / ``shadows`` dict over shared frozen
    specs), so callers may rearrange a plan without corrupting the
    cache.
    """

    def __init__(self, config: ModelConfig, device: SocSpec,
                 options: Optional[BuildOptions] = None):
        self.config = config
        self.device = device
        self.options = options if options is not None else BuildOptions()
        self.float_proc: ProcessorSpec = device.processors[
            self.options.float_backend
        ]
        self.npu: ProcessorSpec = device.npu
        self._plan_cache: Dict[Tuple, ChunkPlan] = {}
        self._metrics = None

    def attach_metrics(self, registry) -> None:
        """Mirror cache hits/misses into ``graph_cache_{hits,misses}_total``
        counters of a :class:`~repro.obs.metrics.MetricsRegistry`."""
        self._metrics = registry

    # -- NPU linear costs ---------------------------------------------------

    def _npu_matmul_s(self, m: int, k: int, n: int,
                      first_in_subgraph: bool = True) -> float:
        """One NPU MatMul; non-first MatMuls of a subgraph pay only the
        cheap intra-graph node overhead, not the full dispatch (the whole
        subgraph is one pre-built QNN graph dispatched once)."""
        shape = MatMulShape(m, k, n)
        if self.options.per_group:
            # The Fig. 4 decomposition dominates here; the skinny-k
            # sub-MatMuls leave nothing for weight streaming to hide, so
            # the per-group path keeps the legacy combine model.
            base = per_group_matmul_latency(
                self.npu, shape, self.options.group_size,
                self.options.weight_dtype,
            )
        else:
            base = matmul_latency(self.npu, shape, self.options.weight_dtype,
                                  dma=self.options.dma)
        if self.options.equivalent_shapes:
            base /= equivalent_shape_gain(m)
        if not first_in_subgraph:
            profile = self.npu.matmul_profile(self.options.weight_dtype)
            base = max(base - profile.overhead_s + NPU_GRAPH_NODE_OVERHEAD_S,
                       0.0)
        return base

    # -- subgraph constructors ----------------------------------------------

    def _pre_attn(self, layer: int, rows: int) -> SubgraphSpec:
        h = self.config.hidden_size
        latency = (norm_latency(self.float_proc, rows, h)
                   + quantize_latency(self.float_proc, rows, h))
        ops = (
            OpSpec(OpKind.NORM, (rows, h)),
            OpSpec(OpKind.QUANTIZE, (rows, h)),
        )
        return SubgraphSpec(layer, SG_PRE_ATTN, Backend.FLOAT, ops, latency,
                            static=True, activation_bytes=rows * h * 4)

    def _qkv(self, layer: int, rows: int) -> SubgraphSpec:
        cfg = self.config
        h = cfg.hidden_size
        bpw = self.options.weight_dtype.bytes
        latency = (self._npu_matmul_s(rows, h, cfg.q_dim)
                   + 2 * self._npu_matmul_s(rows, h, cfg.kv_dim,
                                            first_in_subgraph=False))
        ops = (
            OpSpec(OpKind.LINEAR, (rows, h, cfg.q_dim), h * cfg.q_dim * bpw),
            OpSpec(OpKind.LINEAR, (rows, h, cfg.kv_dim), h * cfg.kv_dim * bpw),
            OpSpec(OpKind.LINEAR, (rows, h, cfg.kv_dim), h * cfg.kv_dim * bpw),
        )
        weight_bytes = h * (cfg.q_dim + 2 * cfg.kv_dim) * bpw
        act_bytes = rows * (cfg.q_dim + 2 * cfg.kv_dim) * 4
        return SubgraphSpec(layer, SG_QKV, Backend.NPU, ops, latency,
                            static=True, weight_bytes=weight_bytes,
                            activation_bytes=act_bytes)

    def _attention(self, layer: int, rows: int, kv_len: int) -> SubgraphSpec:
        cfg = self.config
        rope = self.float_proc.vector_latency(
            rows * (cfg.q_dim + cfg.kv_dim), 4.0
        )
        attn = attention_latency(self.float_proc, rows, kv_len,
                                 cfg.n_heads, cfg.dim_per_head)
        dequant = quantize_latency(self.float_proc, rows, cfg.q_dim)
        ops = (
            OpSpec(OpKind.ROPE, (rows, cfg.q_dim)),
            OpSpec(OpKind.ATTENTION, (rows, kv_len)),
            OpSpec(OpKind.DEQUANTIZE, (rows, cfg.q_dim)),
        )
        # Workspace only: the attention graph reads the shared KV-cache
        # region and the static subgraphs' activation buffers in place; its
        # private memory is a tiled score buffer plus an output accumulator
        # (mobile kernels compute scores in 64-column tiles).
        score_tile = min(kv_len, 64)
        act_bytes = (rows * score_tile * cfg.n_heads
                     + rows * cfg.n_heads * cfg.dim_per_head) * 4
        return SubgraphSpec(layer, SG_ATTN, Backend.FLOAT, ops,
                            rope + attn + dequant, static=False,
                            activation_bytes=act_bytes)

    def _wo(self, layer: int, rows: int) -> SubgraphSpec:
        cfg = self.config
        bpw = self.options.weight_dtype.bytes
        latency = self._npu_matmul_s(rows, cfg.q_dim, cfg.hidden_size)
        ops = (OpSpec(OpKind.LINEAR, (rows, cfg.q_dim, cfg.hidden_size),
                      cfg.q_dim * cfg.hidden_size * bpw),)
        return SubgraphSpec(layer, SG_WO, Backend.NPU, ops, latency,
                            static=True,
                            weight_bytes=cfg.q_dim * cfg.hidden_size * bpw,
                            activation_bytes=rows * cfg.hidden_size * 4)

    def _pre_ffn(self, layer: int, rows: int) -> SubgraphSpec:
        h = self.config.hidden_size
        latency = (self.float_proc.vector_latency(rows * h, 1.0)  # residual
                   + norm_latency(self.float_proc, rows, h)
                   + quantize_latency(self.float_proc, rows, h))
        ops = (
            OpSpec(OpKind.ADD, (rows, h)),
            OpSpec(OpKind.NORM, (rows, h)),
            OpSpec(OpKind.QUANTIZE, (rows, h)),
        )
        return SubgraphSpec(layer, SG_PRE_FFN, Backend.FLOAT, ops, latency,
                            static=True, activation_bytes=rows * h * 4)

    def _ffn(self, layer: int, rows: int) -> SubgraphSpec:
        cfg = self.config
        h, f = cfg.hidden_size, cfg.ffn_hidden
        bpw = self.options.weight_dtype.bytes
        n_up = 2 if cfg.gated_ffn else 1
        latency = (self._npu_matmul_s(rows, h, f)
                   + (n_up - 1) * self._npu_matmul_s(rows, h, f,
                                                     first_in_subgraph=False)
                   + self.npu.vector_latency(rows * f, 6.0)  # act on NPU
                   + self._npu_matmul_s(rows, f, h,
                                        first_in_subgraph=False))
        ops = tuple(
            [OpSpec(OpKind.LINEAR, (rows, h, f), h * f * bpw)] * n_up
            + [OpSpec(OpKind.ACTIVATION, (rows, f)),
               OpSpec(OpKind.LINEAR, (rows, f, h), f * h * bpw)]
        )
        weight_bytes = (n_up + 1) * h * f * bpw
        return SubgraphSpec(layer, SG_FFN, Backend.NPU, ops, latency,
                            static=True, weight_bytes=weight_bytes,
                            activation_bytes=rows * f * 4)

    def _shadow(self, layer: int, position: int, rows: int, n_out: int,
                profile: ShadowProfile) -> ShadowSpec:
        if profile.pruned or profile.outlier_channels <= 0:
            return ShadowSpec(layer, position, 0.0, 0.0, 0.0)
        matmul = shadow_matmul_latency(
            self.float_proc, rows, profile.outlier_channels, n_out
        )
        if self.float_proc is self.npu:
            # same processor: the merge is a vector add, no cross-
            # processor fence (the §5 mixed-precision-NPU what-if)
            sync = self.npu.vector_latency(rows * n_out, 1.0)
        else:
            sync = sync_latency(self.float_proc, self.npu,
                                rows * n_out * 4)
        disk = 0.0
        miss_rate = 1.0 - profile.hot_hit_rate
        if miss_rate > 0 and profile.cold_bytes_per_miss > 0:
            expected_misses = profile.outlier_channels * miss_rate
            disk = expected_misses * disk_read_latency(
                profile.cold_bytes_per_miss
            )
        return ShadowSpec(layer, position, matmul, sync, disk,
                          matmul_ops=2.0 * rows * profile.outlier_channels
                          * n_out)

    # -- public API -----------------------------------------------------------

    def build_chunk(self, chunk_index: int, chunk_len: int,
                    shadow_profiles: Optional[Dict[int, ShadowProfile]] = None
                    ) -> ChunkPlan:
        """Build the plan for chunk ``chunk_index`` (0-based).

        The static-shape constraint means every chunk executes with
        ``rows = chunk_len``; the attention KV length grows with the chunk
        index (``(i+1) * chunk_len``) per the §3.2 causal decomposition.
        """
        if chunk_index < 0 or chunk_len <= 0:
            raise GraphError(
                f"invalid chunk index {chunk_index} / length {chunk_len}"
            )
        global _CACHE_HITS, _CACHE_MISSES
        key = (
            chunk_index, chunk_len,
            None if shadow_profiles is None
            else tuple(sorted(shadow_profiles.items())),
        )
        cached = self._plan_cache.get(key)
        if cached is not None:
            _CACHE_HITS += 1
            if self._metrics is not None:
                self._metrics.counter("graph_cache_hits_total").inc()
            return ChunkPlan(cached.chunk_index, cached.chunk_len,
                             cached.kv_len, list(cached.subgraphs),
                             dict(cached.shadows))
        _CACHE_MISSES += 1
        if self._metrics is not None:
            self._metrics.counter("graph_cache_misses_total").inc()
        rows = chunk_len
        kv_len = (chunk_index + 1) * chunk_len
        cfg = self.config
        subgraphs: List[SubgraphSpec] = []
        shadows: Dict[Tuple[int, int], ShadowSpec] = {}
        for layer in range(cfg.n_layers):
            subgraphs.extend([
                self._pre_attn(layer, rows),
                self._qkv(layer, rows),
                self._attention(layer, rows, kv_len),
                self._wo(layer, rows),
                self._pre_ffn(layer, rows),
                self._ffn(layer, rows),
            ])
            profile = (shadow_profiles or {}).get(layer, ShadowProfile())
            shadows[(layer, SG_QKV)] = self._shadow(
                layer, SG_QKV, rows, cfg.q_dim + 2 * cfg.kv_dim, profile
            )
            shadows[(layer, SG_WO)] = self._shadow(
                layer, SG_WO, rows, cfg.hidden_size, profile
            )
            n_up = 2 if cfg.gated_ffn else 1
            shadows[(layer, SG_FFN)] = self._shadow(
                layer, SG_FFN, rows, n_up * cfg.ffn_hidden + cfg.hidden_size,
                profile,
            )
        self._plan_cache[key] = ChunkPlan(chunk_index, chunk_len, kv_len,
                                          list(subgraphs), dict(shadows))
        return ChunkPlan(chunk_index, chunk_len, kv_len, subgraphs, shadows)

    def npu_ops_per_block(self) -> int:
        """NPU-visible op count per block, for graph lifecycle costs."""
        plan = self.build_chunk(0, 32)
        per_block = [s for s in plan.subgraphs if s.layer == 0]
        return sum(s.op_count() for s in per_block)
