"""DMA/compute overlap: double/quad-buffered weight streaming.

The baseline :class:`~repro.hw.processor.MatMulProfile` model collapses
weight streaming into a single ``combine`` choice per engine: ``"sum"``
(streaming and arithmetic fully serialize) or ``"max"`` (perfect overlap,
the infinite-buffer limit).  Real NPU pipelines sit in between: weights
stream tile-by-tile into a small pool of on-chip buffers, and the MAC
array computes on tile ``i`` while the DMA engine fetches tile ``i+1`` —
the classic double/quad-buffering pattern (2 buffers overlap load with
compute; deeper pools additionally ride out non-uniform tile times).

This module models that pipeline explicitly.  A weight tensor of
``weight_bytes`` is split into tiles of at most ``tile_bytes``; each tile
costs a DMA transfer (descriptor issue + bytes over the memory interface)
and a proportional slice of the MatMul's arithmetic.  The two engines are
chained by the standard recurrence with a buffer-reuse constraint of
depth ``buffers``::

    dma_end[i]     = max(dma_end[i-1], compute_end[i-buffers]) + dma_s[i]
    compute_end[i] = max(compute_end[i-1], dma_end[i]) + compute_s[i]

``buffers=1`` degenerates to fully serial execution (the ``"sum"``
combine); as ``buffers`` and the tile count grow the total approaches
``max(sum(dma), sum(compute))`` plus the pipeline-fill ramp (the first
tile's DMA can never be hidden) — the ``"max"`` combine is exactly the
ideal limit of this model.

Everything here is opt-in: :class:`DmaConfig` defaults to ``None`` in
:class:`~repro.graph.builder.BuildOptions`, so all golden artifacts keep
the legacy combine model bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.hw.processor import MatMulProfile

__all__ = ["DmaConfig", "pipeline_latency", "streamed_matmul_latency",
           "overlap_efficiency"]


@dataclass(frozen=True)
class DmaConfig:
    """Weight-streaming pipeline parameters.

    ``buffers`` is the on-chip tile-pool depth: 1 = serial (no overlap),
    2 = double buffering, 4 = quad buffering.  ``tile_bytes`` is the
    capacity of one pool slot.  ``issue_overhead_s`` is the per-tile DMA
    descriptor cost (programming the engine, fence bookkeeping) — the
    term that punishes overly small tiles.
    """

    buffers: int = 2
    tile_bytes: int = 256 * 1024
    issue_overhead_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.buffers < 1:
            raise ConfigError(
                f"DMA pipeline needs at least one buffer, got {self.buffers}"
            )
        if self.tile_bytes <= 0:
            raise ConfigError(
                f"tile_bytes must be positive, got {self.tile_bytes}"
            )
        if self.issue_overhead_s < 0:
            raise ConfigError(
                f"negative DMA issue overhead {self.issue_overhead_s}"
            )


def pipeline_latency(dma_s: Sequence[float], compute_s: Sequence[float],
                     buffers: int) -> float:
    """Makespan of a tile pipeline: one DMA engine feeding one compute
    engine through a pool of ``buffers`` rotating tiles.

    ``dma_s[i]`` / ``compute_s[i]`` are the transfer and compute times of
    tile ``i``.  The DMA for tile ``i`` cannot start until the buffer it
    rotates into is free, i.e. until tile ``i - buffers`` has finished
    computing.
    """
    if len(dma_s) != len(compute_s):
        raise ConfigError(
            f"tile list mismatch: {len(dma_s)} DMA vs "
            f"{len(compute_s)} compute entries"
        )
    if buffers < 1:
        raise ConfigError(f"buffers must be >= 1, got {buffers}")
    compute_ends: list = []
    dma_end = 0.0
    compute_end = 0.0
    for i, (d, c) in enumerate(zip(dma_s, compute_s)):
        if d < 0 or c < 0:
            raise ConfigError(f"negative tile time at index {i}")
        free_at = compute_ends[i - buffers] if i >= buffers else 0.0
        dma_end = max(dma_end, free_at) + d
        compute_end = max(compute_end, dma_end) + c
        compute_ends.append(compute_end)
    return compute_end


def _tile_sizes(weight_bytes: int, tile_bytes: int) -> list:
    """Split ``weight_bytes`` into full tiles plus one remainder tile."""
    n_full, rem = divmod(weight_bytes, tile_bytes)
    sizes = [tile_bytes] * n_full
    if rem or not sizes:
        sizes.append(rem)
    return sizes


def streamed_matmul_latency(profile: MatMulProfile, m: int, k: int, n: int,
                            weight_bytes: int, dma: DmaConfig) -> float:
    """MatMul latency under explicit tile-pipelined weight streaming.

    The arithmetic total is the profile's roofline compute term; each
    tile carries a slice of it proportional to its share of the weight
    bytes (output-stationary tiling: the MAC work per weight tile is
    uniform per byte).
    """
    if m <= 0 or k <= 0 or n <= 0:
        raise ConfigError(f"invalid matmul shape ({m}, {k}, {n})")
    if weight_bytes <= 0:
        raise ConfigError(f"weight_bytes must be positive, got {weight_bytes}")
    ops = 2.0 * m * k * n
    compute_total = ops / (profile.peak_ops * profile.utilization(m))
    sizes = _tile_sizes(weight_bytes, dma.tile_bytes)
    dma_s = [dma.issue_overhead_s + b / profile.mem_bandwidth for b in sizes]
    compute_s = [compute_total * (b / weight_bytes) for b in sizes]
    return profile.overhead_s + pipeline_latency(dma_s, compute_s,
                                                 dma.buffers)


def overlap_efficiency(profile: MatMulProfile, m: int, k: int, n: int,
                       weight_bytes: int, dma: DmaConfig) -> float:
    """How much of the ideal (``"max"`` combine) overlap the pipeline
    achieves: 1.0 = pipeline as fast as perfect overlap, lower = the
    fill ramp / shallow buffering is costing time.
    """
    ops = 2.0 * m * k * n
    compute = ops / (profile.peak_ops * profile.utilization(m))
    memory = weight_bytes / profile.mem_bandwidth
    ideal = profile.overhead_s + max(compute, memory)
    actual = streamed_matmul_latency(profile, m, k, n, weight_bytes, dma)
    return ideal / actual if actual > 0 else 1.0
