"""Operator-level latency models over the processor specifications.

This module answers "how long does operator X take on processor P" for
every operator kind the compute-graph layer emits, including the two
NPU-specific effects at the heart of the paper:

* **per-group MatMul decomposition** (§2.3, Fig. 4): mobile NPUs cannot run
  per-group quantized MatMuls directly; they split the MatMul into
  ``n_groups`` group-sized sub-MatMuls and reduce the partial results with
  float additions, costing 8–10× the per-tensor MatMul;
* **FP16 MatMul collapse** (Table 3): FP operations on the NPU run orders
  of magnitude slower than INT8.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from repro.errors import UnsupportedOperationError
from repro.hw.dma import DmaConfig, streamed_matmul_latency
from repro.hw.processor import DType, ProcessorSpec


@dataclass(frozen=True)
class MatMulShape:
    """Shape of an ``(m, k) @ (k, n)`` product."""

    m: int
    k: int
    n: int

    @property
    def ops(self) -> float:
        """Multiply-accumulate operation count (×2 for MAC pairs)."""
        return 2.0 * self.m * self.k * self.n

    def weight_bytes(self, dtype: DType) -> int:
        return self.k * self.n * dtype.bytes


def matmul_latency(proc: ProcessorSpec, shape: MatMulShape,
                   dtype: DType = DType.INT8,
                   dma: Optional[DmaConfig] = None) -> float:
    """Latency of one per-tensor MatMul on ``proc``.

    With ``dma`` set, weight streaming is modelled as an explicit
    double/quad-buffered tile pipeline (:mod:`repro.hw.dma`) instead of
    the profile's coarse ``combine`` rule.
    """
    if not proc.supports(dtype):
        raise UnsupportedOperationError(
            f"{proc.name} has no {dtype.value} MatMul path"
        )
    profile = proc.matmul_profile(dtype)
    if dma is not None:
        return streamed_matmul_latency(profile, shape.m, shape.k, shape.n,
                                       shape.weight_bytes(dtype), dma)
    return profile.latency(shape.m, shape.k, shape.n,
                           shape.weight_bytes(dtype))


#: Per-node overhead inside an already-dispatched NPU graph (tensor setup,
#: synchronizing the sub-MatMul pipeline) — far below the per-dispatch cost.
NPU_GRAPH_NODE_OVERHEAD_S = 50e-6


def per_group_matmul_latency(proc: ProcessorSpec, shape: MatMulShape,
                             group_size: int,
                             dtype: DType = DType.INT8) -> float:
    """Latency of a per-group quantized MatMul.

    On processors that support grouped kernels natively (mobile CPUs — the
    layout llama.cpp's K-Quant uses) the cost is the per-tensor cost plus a
    small per-group rescale term.  On the NPU (Table 2: no native support)
    the MatMul decomposes into ``n_groups`` sub-MatMuls — all nodes of one
    graph, each paying a node overhead and poor skinny-``k`` utilization —
    plus a float reduction of the partial results on the NPU's weak float
    vector path, reproducing the 8.1–10.7× penalty of Fig. 4.
    """
    if group_size <= 0:
        raise UnsupportedOperationError(
            f"group_size must be positive, got {group_size}"
        )
    n_groups = max(1, shape.k // group_size)
    if proc.supports_per_group_matmul:
        base = matmul_latency(proc, shape, dtype)
        rescale = proc.vector_latency(shape.m * shape.n, n_groups * 0.01)
        return base + rescale
    # NPU path: n_groups sub-MatMul nodes + float reduction of partials.
    sub_shape = MatMulShape(shape.m, min(group_size, shape.k), shape.n)
    profile = proc.matmul_profile(dtype)
    sub_body = profile.latency(
        sub_shape.m, sub_shape.k, sub_shape.n, sub_shape.weight_bytes(dtype)
    ) - profile.overhead_s
    reduce_elements = shape.m * shape.n * (n_groups - 1)
    reduction = float_reduce_latency(proc, reduce_elements)
    return (profile.overhead_s
            + n_groups * (NPU_GRAPH_NODE_OVERHEAD_S + sub_body)
            + reduction)


def float_reduce_latency(proc: ProcessorSpec, elements: int) -> float:
    """Float summation of ``elements`` partial results.

    On the NPU this runs on its (weak) float vector path; on CPU/GPU it is
    an ordinary vector op.  Two effective ops per element: the partial
    results stream through memory once for the load and once for the
    accumulate/store.
    """
    return proc.vector_latency(elements, 2.0)


def attention_latency(proc: ProcessorSpec, q_len: int, kv_len: int,
                      n_heads: int, head_dim: int) -> float:
    """Float attention core: QK^T, softmax, and PV for one layer.

    Attention is always float (Table 4), so on the NPU this would hit the
    FP16 path; llm.npu therefore schedules it to the CPU/GPU.
    """
    if q_len <= 0 or kv_len <= 0:
        raise UnsupportedOperationError("attention lengths must be positive")
    score_ops = 2.0 * q_len * kv_len * head_dim * n_heads
    pv_ops = 2.0 * q_len * kv_len * head_dim * n_heads
    softmax_elements = q_len * kv_len * n_heads
    if proc.supports(DType.FP16):
        profile = proc.matmul_profile(DType.FP16)
        # Two batched skinny matmuls; weight-streaming side is activations.
        matmuls = (
            profile.latency(q_len, head_dim, kv_len * n_heads,
                            weight_bytes=int(kv_len * head_dim * n_heads * 2))
            + profile.latency(q_len, kv_len, head_dim * n_heads,
                              weight_bytes=int(kv_len * head_dim * n_heads * 2))
        )
    else:
        matmuls = proc.vector_latency(int(score_ops + pv_ops), 1.0)
    softmax = proc.vector_latency(softmax_elements, 4.0)
    return matmuls + softmax


def norm_latency(proc: ProcessorSpec, rows: int, width: int) -> float:
    """LayerNorm / RMSNorm over ``rows`` tokens (float, ~4 ops/element)."""
    return proc.vector_latency(rows * width, 4.0)


def activation_latency(proc: ProcessorSpec, rows: int, width: int) -> float:
    """SiLU/GeLU elementwise activation (float, ~6 ops/element)."""
    return proc.vector_latency(rows * width, 6.0)


def quantize_latency(proc: ProcessorSpec, rows: int, width: int) -> float:
    """Float -> int8 activation quantization (scale, round, clamp)."""
    return proc.vector_latency(rows * width, 3.0)


def shadow_matmul_latency(proc: ProcessorSpec, rows: int,
                          outlier_channels: int, n_out: int) -> float:
    """The CPU-side sparse outlier MatMul of §3.3.

    The extracted outlier tensor is dense ``(rows, outlier_channels)``
    against the cached float weight columns ``(outlier_channels, n_out)``.
    Zero outliers costs nothing (no kernel is launched).
    """
    if outlier_channels <= 0:
        return 0.0
    shape = MatMulShape(rows, outlier_channels, n_out)
    if proc.supports(DType.FP32):
        dtype = DType.FP32
    elif proc.supports(DType.FP16):
        dtype = DType.FP16
    else:
        raise UnsupportedOperationError(
            f"{proc.name} cannot run the float shadow MatMul"
        )
    return matmul_latency(proc, shape, dtype)


def sync_latency(src: ProcessorSpec, dst: ProcessorSpec,
                 nbytes: int, base_s: float = 8e-4) -> float:
    """CPU<->NPU synchronization of an intermediate result.

    Mobile SoCs share physical DRAM (§2.2), so no copy is needed — but
    cache maintenance plus a driver round-trip (interrupt, fence, graph
    re-arm) costs just under a millisecond, plus a per-byte term.  This is
    the §3.3 overhead the paper measures at 29.7% of end-to-end latency
    when every layer keeps shadow execution — and that importance pruning
    eliminates for the 85% least important layers.
    """
    if nbytes < 0:
        raise UnsupportedOperationError(f"negative sync size {nbytes}")
    shared_bw = min(src.matmul[next(iter(src.matmul))].mem_bandwidth,
                    dst.matmul[next(iter(dst.matmul))].mem_bandwidth)
    return base_s + nbytes / shared_bw


def disk_read_latency(nbytes: int, bandwidth: float = 1.2e9,
                      base_s: float = 150e-6) -> float:
    """UFS flash read for cold (non-hot-channel) shadow weights (§3.3)."""
    if nbytes < 0:
        raise UnsupportedOperationError(f"negative read size {nbytes}")
    return base_s + nbytes / bandwidth
