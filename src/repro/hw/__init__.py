"""Mobile SoC simulator.

Analytical latency/energy/memory models for the CPU, GPU and NPU of the
paper's evaluation devices, calibrated against the paper's own published
micro-benchmarks (Table 3, Figure 2), plus a discrete-event simulator that
executes heterogeneous task graphs under pluggable scheduling policies.
"""

from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.hw.latency import (
    MatMulShape,
    activation_latency,
    attention_latency,
    disk_read_latency,
    float_reduce_latency,
    matmul_latency,
    norm_latency,
    per_group_matmul_latency,
    quantize_latency,
    shadow_matmul_latency,
    sync_latency,
)
from repro.hw.memory import GiB, MiB, MemorySpace, SocMemory
from repro.hw.npu_graph import NpuGraphCostModel, graph_ops_for_model
from repro.hw.processor import DType, MatMulProfile, ProcKind, ProcessorSpec
from repro.hw.sim import (
    FaultInjector,
    FaultSpec,
    FifoPolicy,
    SchedulingPolicy,
    SimContext,
    Simulator,
    Task,
    critical_path_s,
)
from repro.hw.soc import (
    DEVICES,
    REDMI_K60_PRO,
    REDMI_K70_PRO,
    SocSpec,
    get_device,
    with_mixed_precision_npu,
)
from repro.hw.trace import Trace, TraceEvent

__all__ = [
    "DType",
    "ProcKind",
    "MatMulProfile",
    "ProcessorSpec",
    "MatMulShape",
    "matmul_latency",
    "per_group_matmul_latency",
    "attention_latency",
    "norm_latency",
    "activation_latency",
    "quantize_latency",
    "shadow_matmul_latency",
    "float_reduce_latency",
    "sync_latency",
    "disk_read_latency",
    "EnergyModel",
    "EnergyBreakdown",
    "MemorySpace",
    "SocMemory",
    "GiB",
    "MiB",
    "NpuGraphCostModel",
    "graph_ops_for_model",
    "Simulator",
    "Task",
    "SchedulingPolicy",
    "FifoPolicy",
    "FaultSpec",
    "FaultInjector",
    "SimContext",
    "critical_path_s",
    "Trace",
    "TraceEvent",
    "SocSpec",
    "REDMI_K70_PRO",
    "REDMI_K60_PRO",
    "DEVICES",
    "get_device",
    "with_mixed_precision_npu",
]
