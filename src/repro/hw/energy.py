"""Energy accounting for the SoC simulator.

Energy = Σ over processors of (active power × busy time + idle power ×
idle time) across the makespan, matching how the paper samples the Android
power supply during a run (§4.1).  The per-processor power levels encode
the paper's qualitative measurement: during prefill all CPU cores run at
full tilt and draw the most power, the GPU is intermediate, and the NPU at
500–750 MHz draws the least (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import HardwareError
from repro.hw.processor import ProcessorSpec


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules spent per processor plus the idle/base platform draw."""

    per_processor: Dict[str, float]
    platform: float

    @property
    def total_j(self) -> float:
        return self.platform + sum(self.per_processor.values())


#: Fraction of a processor's active power drawn while executing
#: bandwidth-bound *helper* work (attention GEMMs, shadow MatMuls, syncs)
#: rather than all-lanes compute.  During llm.npu prefill the CPU is a
#: helper — a couple of cores streaming memory — not the all-cores GEMM
#: engine the CPU *baselines* run, and its power draw reflects that
#: (§4.2: "during the LLM prefill stage, all CPU cores are fully
#: utilized" describes the CPU engines, not llm.npu's CPU side).
HELPER_POWER_FRACTION = 0.45


class EnergyModel:
    """Integrates processor busy intervals into energy.

    ``platform_power_w`` models the always-on rest of the phone (DRAM
    refresh, rails, screen off) charged over the makespan.
    """

    def __init__(self, processors: Mapping[str, ProcessorSpec],
                 platform_power_w: float = 0.8):
        if platform_power_w < 0:
            raise HardwareError("platform power must be non-negative")
        self.processors = dict(processors)
        self.platform_power_w = platform_power_w

    def energy(self, busy_seconds: Mapping[str, float],
               makespan_s: float,
               helper_seconds: Optional[Mapping[str, float]] = None,
               ) -> EnergyBreakdown:
        """Energy for a run with the given per-processor busy time.

        ``helper_seconds`` marks, per processor, how much of its busy time
        was bandwidth-bound helper work charged at
        :data:`HELPER_POWER_FRACTION` of active power instead of the full
        all-lanes draw.  Must be <= the processor's busy time.
        """
        if makespan_s < 0:
            raise HardwareError(f"negative makespan {makespan_s}")
        helper_seconds = helper_seconds or {}
        per_proc: Dict[str, float] = {}
        for name, spec in self.processors.items():
            busy = float(busy_seconds.get(name, 0.0))
            if busy > makespan_s * (1 + 1e-9):
                raise HardwareError(
                    f"{name} busy {busy:.4f}s exceeds makespan "
                    f"{makespan_s:.4f}s"
                )
            helper = float(helper_seconds.get(name, 0.0))
            if helper > busy * (1 + 1e-9):
                raise HardwareError(
                    f"{name} helper time {helper:.4f}s exceeds busy "
                    f"time {busy:.4f}s"
                )
            full = busy - helper
            idle = max(0.0, makespan_s - busy)
            helper_power = spec.active_power_w * HELPER_POWER_FRACTION
            per_proc[name] = (spec.active_power_w * full
                              + max(helper_power, spec.idle_power_w) * helper
                              + spec.idle_power_w * idle)
        return EnergyBreakdown(
            per_processor=per_proc,
            platform=self.platform_power_w * makespan_s,
        )

    def busy_energy_j(self, proc_name: str, seconds: float) -> float:
        """Energy for one processor being active for ``seconds``."""
        try:
            spec = self.processors[proc_name]
        except KeyError:
            raise HardwareError(f"unknown processor {proc_name!r}") from None
        if seconds < 0:
            raise HardwareError(f"negative duration {seconds}")
        return spec.active_power_w * seconds
