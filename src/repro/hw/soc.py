"""Device presets: the two phones of the paper's evaluation (§4.1).

* **Redmi K70 Pro** — Snapdragon 8 Gen 3, 24 GB RAM (the paper's primary
  device and the source of the Table 3 micro-benchmarks the MatMul
  profiles below are fitted against — see ``scripts/fit_latency.py``).
* **Redmi K60 Pro** — Snapdragon 8 Gen 2, 16 GB RAM (the rootable device
  used for the energy measurements), modelled as a uniformly slightly
  slower 8 Gen 3.

Fit quality against Table 3: NPU INT8 within 19%, CPU INT8 within 20%,
GPU FP16 within 21%, NPU FP16 within 8% across all six published shapes —
see ``tests/hw/test_latency.py (TestTable3Calibration)``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.hw.energy import EnergyModel
from repro.hw.memory import GiB, SocMemory
from repro.hw.npu_graph import NpuGraphCostModel
from repro.hw.processor import DType, MatMulProfile, ProcKind, ProcessorSpec


@dataclass(frozen=True)
class SocSpec:
    """A complete device: processors, memory, energy, NPU graph costs."""

    name: str
    soc: str
    processors: Dict[str, ProcessorSpec]
    dram_bytes: int
    npu_region_bytes: int = 4 * GiB
    platform_power_w: float = 0.8
    graph_cost: NpuGraphCostModel = field(default_factory=NpuGraphCostModel)

    def __post_init__(self) -> None:
        for required in ("cpu", "gpu", "npu"):
            if required not in self.processors:
                raise ConfigError(f"{self.name}: missing processor {required!r}")

    @property
    def cpu(self) -> ProcessorSpec:
        return self.processors["cpu"]

    @property
    def gpu(self) -> ProcessorSpec:
        return self.processors["gpu"]

    @property
    def npu(self) -> ProcessorSpec:
        return self.processors["npu"]

    def energy_model(self) -> EnergyModel:
        return EnergyModel(self.processors, self.platform_power_w)

    def memory(self) -> SocMemory:
        return SocMemory(self.dram_bytes, self.npu_region_bytes)

    def scaled(self, name: str, soc: str, cpu_gpu: float,
               npu: float, dram_bytes: int) -> "SocSpec":
        """Derive a uniformly slower/faster sibling device."""
        if cpu_gpu <= 0 or npu <= 0:
            raise ConfigError("scale factors must be positive")
        procs = {}
        for key, spec in self.processors.items():
            factor = npu if spec.kind is ProcKind.NPU else cpu_gpu
            matmul = {
                dtype: dataclasses.replace(
                    profile, peak_ops=profile.peak_ops * factor,
                    mem_bandwidth=profile.mem_bandwidth * factor,
                )
                for dtype, profile in spec.matmul.items()
            }
            procs[key] = dataclasses.replace(
                spec, matmul=matmul,
                vector_ops_per_s=spec.vector_ops_per_s * factor,
            )
        return dataclasses.replace(
            self, name=name, soc=soc, processors=procs, dram_bytes=dram_bytes
        )


def _snapdragon_8gen3_processors() -> Dict[str, ProcessorSpec]:
    """Fitted against Table 3 (Redmi K70 Pro). See scripts/fit_latency.py."""
    cpu = ProcessorSpec(
        name="Kryo CPU (1+5+2)",
        kind=ProcKind.CPU,
        matmul={
            # Fitted: additive compute+memory, saturates by ~58 rows.
            # min_util 0.3: the m=1 GEMV decode path switches to
            # memory-tuned kernels rather than following the batched
            # utilization law (matches Table 5's ~80 ms/token decode).
            DType.INT8: MatMulProfile(
                peak_ops=4.25e11, m_sat=58.0, m_exp=1.154,
                overhead_s=2.54e-3, mem_bandwidth=2.95e10,
                combine="sum", min_util=0.3,
            ),
            # FP16 NEON path used for attention and float fallbacks
            # (8 big-core armv8.2 fp16: ~380 GFLOPS peak, ~60% achievable
            # on the batched attention GEMMs).
            DType.FP16: MatMulProfile(
                peak_ops=2.2e11, m_sat=64.0, m_exp=0.7,
                overhead_s=3.0e-4, mem_bandwidth=2.95e10,
                combine="sum", min_util=0.2,
            ),
            DType.FP32: MatMulProfile(
                peak_ops=6.0e10, m_sat=32.0, m_exp=0.7,
                overhead_s=3.0e-4, mem_bandwidth=2.95e10,
                combine="sum", min_util=0.2,
            ),
        },
        vector_ops_per_s=2.5e10,
        dispatch_overhead_s=2.0e-5,
        active_power_w=6.5,
        idle_power_w=0.25,
        supports_per_group_matmul=True,
        freq_mhz=3300,
    )
    gpu = ProcessorSpec(
        name="Adreno 750",
        kind=ProcKind.GPU,
        matmul={
            # Fitted: additive, near-linear M gain up to ~257 rows.
            DType.FP16: MatMulProfile(
                peak_ops=9.15e11, m_sat=257.0, m_exp=0.453,
                overhead_s=4.1e-4, mem_bandwidth=1.02e11,
                combine="sum", min_util=0.1,
            ),
            DType.INT8: MatMulProfile(
                peak_ops=1.4e12, m_sat=257.0, m_exp=0.453,
                overhead_s=4.1e-4, mem_bandwidth=1.02e11,
                combine="sum", min_util=0.1,
            ),
            DType.FP32: MatMulProfile(
                peak_ops=4.5e11, m_sat=257.0, m_exp=0.453,
                overhead_s=4.1e-4, mem_bandwidth=1.02e11,
                combine="sum", min_util=0.1,
            ),
        },
        vector_ops_per_s=8.0e10,
        dispatch_overhead_s=1.5e-4,
        active_power_w=4.5,
        idle_power_w=0.15,
        supports_per_group_matmul=True,
        freq_mhz=903,
    )
    npu = ProcessorSpec(
        name="Hexagon NPU",
        kind=ProcKind.NPU,
        matmul={
            # Fitted: roofline; compute saturates early but dispatch and
            # weight streaming keep per-token cost falling until ~256 rows
            # (Fig. 8).  This fit also reproduces the paper's whole-chunk
            # measurement (§3.4: ~315 ms of NPU work per 256-token chunk
            # of Qwen1.5-1.8B, about 2x the CPU-side float work).
            DType.INT8: MatMulProfile(
                peak_ops=2.1675e12, m_sat=25.6, m_exp=1.0,
                overhead_s=5.67e-4, mem_bandwidth=1.45e10,
                combine="max", min_util=0.02,
            ),
            # FP16 on the NPU is catastrophically slow (Table 3: up to
            # 700x slower than INT8) — the reason float ops leave the NPU.
            DType.FP16: MatMulProfile(
                peak_ops=3.17e9, m_sat=83.0, m_exp=1.194,
                overhead_s=2.0e-2, mem_bandwidth=3.0e10,
                combine="max", min_util=0.05,
            ),
        },
        vector_ops_per_s=6.0e9,  # weak float vector path
        dispatch_overhead_s=2.0e-4,
        active_power_w=1.2,
        idle_power_w=0.05,
        supports_per_group_matmul=False,  # Table 2: no mobile NPU has it
        freq_mhz=750,
    )
    return {"cpu": cpu, "gpu": gpu, "npu": npu}


REDMI_K70_PRO = SocSpec(
    name="Redmi K70 Pro",
    soc="Snapdragon 8 Gen 3",
    processors=_snapdragon_8gen3_processors(),
    dram_bytes=24 * GiB,
)

REDMI_K60_PRO = REDMI_K70_PRO.scaled(
    name="Redmi K60 Pro",
    soc="Snapdragon 8 Gen 2",
    cpu_gpu=0.85,
    npu=0.80,
    dram_bytes=16 * GiB,
)

#: Registry of the paper's evaluation devices.
DEVICES: Dict[str, SocSpec] = {
    REDMI_K70_PRO.name: REDMI_K70_PRO,
    REDMI_K60_PRO.name: REDMI_K60_PRO,
}


def with_mixed_precision_npu(base: SocSpec, fp16_peak_ops: float = 4e12,
                             name_suffix: str = " (FP16 NPU concept)"
                             ) -> SocSpec:
    """A hypothetical device whose NPU has first-class FP16 units.

    §5's third hardware-design implication: mixed-precision operands in
    the computing units.  The INT8 path is unchanged; the FP16 path gets
    GPU-class throughput, modest dispatch overhead and a capable vector
    unit — enough to host attention and the other float operators.
    """
    if fp16_peak_ops <= 0:
        raise ConfigError("fp16_peak_ops must be positive")
    npu = base.npu
    matmul = dict(npu.matmul)
    matmul[DType.FP16] = MatMulProfile(
        peak_ops=fp16_peak_ops, m_sat=64.0, m_exp=0.7,
        overhead_s=3.0e-4, mem_bandwidth=matmul[DType.INT8].mem_bandwidth,
        combine="max", min_util=0.1,
    )
    new_npu = dataclasses.replace(
        npu, matmul=matmul,
        vector_ops_per_s=max(npu.vector_ops_per_s, 4e10),
        active_power_w=npu.active_power_w * 1.4,
    )
    processors = dict(base.processors)
    processors["npu"] = new_npu
    return dataclasses.replace(
        base, name=base.name + name_suffix, processors=processors
    )


def get_device(name: str) -> SocSpec:
    """Look up a device preset by (case-insensitive) name."""
    for key, spec in DEVICES.items():
        if key.lower() == name.lower():
            return spec
    raise ConfigError(f"unknown device {name!r}; available: {sorted(DEVICES)}")
