"""Memory spaces of the mobile SoC.

Mobile SoCs use one physical DRAM chip but *separate memory spaces* per
processor (§3.3): a tensor visible to the NPU driver is not automatically
visible to CPU user space, which is why shadow execution would naively
duplicate every MatMul weight.  The NPU can additionally only address a
limited region (≈4 GB for Hexagon, §4 implementation notes), which can be
smaller than the LLM weights — the reason llm.npu prioritizes
compute-heavy operators for NPU residency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import MemoryLimitError

GiB = 1024 ** 3
MiB = 1024 ** 2


@dataclass
class Allocation:
    """A live named allocation inside a memory space."""

    name: str
    nbytes: int


class MemorySpace:
    """A bounded region with named allocations and peak tracking."""

    def __init__(self, name: str, limit_bytes: Optional[int] = None):
        if limit_bytes is not None and limit_bytes <= 0:
            raise MemoryLimitError(f"{name}: non-positive limit")
        self.name = name
        self.limit_bytes = limit_bytes
        self._allocations: Dict[str, Allocation] = {}
        self.peak_bytes = 0

    @property
    def used_bytes(self) -> int:
        return sum(a.nbytes for a in self._allocations.values())

    def alloc(self, name: str, nbytes: int) -> Allocation:
        """Reserve ``nbytes`` under ``name``; raises on overflow."""
        if nbytes < 0:
            raise MemoryLimitError(f"{self.name}: negative allocation {name}")
        if name in self._allocations:
            raise MemoryLimitError(
                f"{self.name}: allocation {name!r} already exists"
            )
        new_total = self.used_bytes + nbytes
        if self.limit_bytes is not None and new_total > self.limit_bytes:
            raise MemoryLimitError(
                f"{self.name}: allocating {nbytes / MiB:.1f} MiB for "
                f"{name!r} exceeds limit "
                f"({new_total / MiB:.1f} / {self.limit_bytes / MiB:.1f} MiB)"
            )
        allocation = Allocation(name, nbytes)
        self._allocations[name] = allocation
        self.peak_bytes = max(self.peak_bytes, new_total)
        return allocation

    def free(self, name: str) -> None:
        if name not in self._allocations:
            raise MemoryLimitError(
                f"{self.name}: no allocation named {name!r}"
            )
        del self._allocations[name]

    def has(self, name: str) -> bool:
        return name in self._allocations

    def would_fit(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would fit right now."""
        if self.limit_bytes is None:
            return True
        return self.used_bytes + nbytes <= self.limit_bytes


class SocMemory:
    """The memory spaces of one device.

    ``dram`` is the whole physical memory (the device's RAM size); ``cpu``
    and ``npu`` are the per-processor spaces carved from it.  The NPU space
    carries the Hexagon ~4 GB addressing limit.  Tracking them separately
    reproduces the paper's memory accounting: shadow execution needs float
    weight copies in *CPU* space even though the bytes live in the same
    DRAM chip.
    """

    def __init__(self, dram_bytes: int, npu_region_bytes: int = 4 * GiB):
        self.dram = MemorySpace("dram", dram_bytes)
        self.cpu = MemorySpace("cpu", dram_bytes)
        self.npu = MemorySpace("npu", min(npu_region_bytes, dram_bytes))

    def alloc_shared(self, name: str, nbytes: int,
                     spaces: Optional[list] = None) -> None:
        """Allocate the same buffer into several spaces plus DRAM once."""
        spaces = spaces if spaces is not None else [self.cpu]
        self.dram.alloc(name, nbytes)
        done = []
        try:
            for space in spaces:
                space.alloc(name, nbytes)
                done.append(space)
        except MemoryLimitError:
            self.dram.free(name)
            for space in done:
                space.free(name)
            raise

    def total_used(self) -> int:
        return self.dram.used_bytes

    def report(self) -> Dict[str, int]:
        """Current usage per space in bytes."""
        return {
            "dram": self.dram.used_bytes,
            "cpu": self.cpu.used_bytes,
            "npu": self.npu.used_bytes,
        }
