"""Discrete-event simulator for heterogeneous task graphs.

Tasks carry a processor assignment, a duration (from the latency models),
and dependencies.  The simulator enforces the paper's Eq. 4 constraint —
each processor executes exactly one subgraph at a time — and delegates the
*choice* among ready tasks to a pluggable :class:`SchedulingPolicy`, which
is where llm.npu's out-of-order heuristic (§3.4) plugs in.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.errors import (
    DependencyError,
    PermanentEngineError,
    SchedulingError,
    TransientEngineError,
)
from repro.hw.trace import Trace, TraceEvent


@dataclass(frozen=True)
class FaultSpec:
    """Configuration of the deterministic fault-injection hook.

    ``transient_rate`` / ``permanent_rate`` are per-execution fault
    probabilities drawn from a seeded stream (so a given spec always
    injects the same faults at the same execution indices).  ``script``
    overrides the stochastic draws entirely with an explicit per-draw
    fault sequence — the handle the tests use to pin failures to exact
    attempts; draws past the end of the script are fault-free.
    """

    transient_rate: float = 0.0
    permanent_rate: float = 0.0
    seed: int = 0
    script: Optional[Tuple[Optional[str], ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.transient_rate <= 1.0:
            raise SchedulingError("transient_rate must be in [0, 1]")
        if not 0.0 <= self.permanent_rate <= 1.0:
            raise SchedulingError("permanent_rate must be in [0, 1]")
        if self.transient_rate + self.permanent_rate > 1.0:
            raise SchedulingError("fault rates must sum to at most 1")
        if self.script is not None:
            for kind in self.script:
                if kind not in (None, "transient", "permanent"):
                    raise SchedulingError(
                        f"unknown scripted fault kind {kind!r}"
                    )


class FaultInjector:
    """Seeded deterministic fault source for engine executions.

    Engines call :meth:`check` once per execution attempt; the injector
    either returns silently or raises a typed
    :class:`~repro.errors.EngineError` subclass.  Draws are consumed from
    a seeded RNG (or a fixed script), so the fault pattern is a pure
    function of the spec and the attempt sequence.  While suspended (see
    :meth:`suspended`), checks are free: no draw is consumed and no fault
    fires — the service layer uses this for cost *estimation* runs that
    must not perturb the fault stream.

    With a :class:`~repro.obs.tracer.Tracer` attached (see
    :meth:`attach_tracer`), every consumed draw becomes an instant event
    on the ``service / faults`` track, stamped with the sim-clock time
    the caller passes to :meth:`check` — tracing observes the draw
    stream without perturbing it.
    """

    def __init__(self, spec: Optional[FaultSpec] = None):
        self.spec = spec if spec is not None else FaultSpec()
        self._rng = np.random.default_rng(self.spec.seed)
        self._n_draws = 0
        self._n_injected: Dict[str, int] = {"transient": 0, "permanent": 0}
        self._suspend_depth = 0
        self._tracer = None
        self._trace_track = ("service", "faults")
        self._listeners: List = []

    def attach_tracer(self, tracer, proc: str = "service",
                      thread: str = "faults") -> None:
        """Mirror every consumed draw onto ``tracer`` as instant events."""
        self._tracer = tracer if tracer is not None and tracer.enabled \
            else None
        self._trace_track = (proc, thread)

    def add_listener(self, listener) -> None:
        """Register a draw-stream consumer.

        ``listener`` is called as ``listener(index, kind, now_s)`` for
        every *consumed* draw (``kind`` is ``None`` for a clean draw);
        suspended checks consume nothing and notify nobody, so cost
        estimation stays invisible.  Listeners observe after the draw is
        fully decided — they cannot perturb the fault stream.  This is
        the hook SLO monitors use to cross-link alert windows to
        injected faults.
        """
        if not callable(listener):
            raise SchedulingError("fault listener must be callable")
        self._listeners.append(listener)

    def draw(self, now_s: float = 0.0) -> Optional[str]:
        """One fault draw: ``None``, ``'transient'`` or ``'permanent'``."""
        if self._suspend_depth > 0:
            return None
        index = self._n_draws
        self._n_draws += 1
        if self.spec.script is not None:
            kind = (self.spec.script[index]
                    if index < len(self.spec.script) else None)
        else:
            u = float(self._rng.random())
            if u < self.spec.permanent_rate:
                kind = "permanent"
            elif u < self.spec.permanent_rate + self.spec.transient_rate:
                kind = "transient"
            else:
                kind = None
        if kind is not None:
            self._n_injected[kind] += 1
        if self._tracer is not None:
            proc, thread = self._trace_track
            self._tracer.instant(
                f"fault.{kind or 'ok'}", proc=proc, thread=thread,
                ts_s=now_s, cat="fault", draw=index,
                kind=kind or "ok",
            )
        for listener in self._listeners:
            listener(index, kind, now_s)
        return kind

    def check(self, now_s: float = 0.0) -> None:
        """Raise the typed error for this execution attempt, if any.

        ``now_s`` is the caller's sim-clock time, used only to timestamp
        the trace event for this draw.
        """
        kind = self.draw(now_s)
        if kind == "transient":
            raise TransientEngineError(
                f"injected transient engine fault (draw #{self._n_draws})"
            )
        if kind == "permanent":
            raise PermanentEngineError(
                f"injected permanent engine fault (draw #{self._n_draws})"
            )

    @contextmanager
    def suspended(self):
        """Context manager: no draws are consumed, no faults fire."""
        self._suspend_depth += 1
        try:
            yield self
        finally:
            self._suspend_depth -= 1

    @property
    def n_draws(self) -> int:
        return self._n_draws

    def n_injected(self, kind: str) -> int:
        return self._n_injected[kind]


@dataclass(frozen=True)
class Task:
    """A schedulable unit (one subgraph execution, sync, etc.)."""

    task_id: str
    proc: str
    duration_s: float
    deps: Tuple[str, ...] = ()
    tag: str = ""
    chunk: int = -1
    subgraph: int = -1
    ops: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise SchedulingError(
                f"task {self.task_id}: negative duration"
            )


class SchedulingPolicy:
    """Chooses which ready task a newly-idle processor runs next.

    ``select`` may return ``None`` to deliberately keep the processor idle
    until the next completion event — how head-of-line-blocking command
    queues behave (see :class:`HeadOfLinePolicy`).
    """

    name = "base"

    def select(self, proc: str, ready: List[Task],
               context: "SimContext") -> Optional[Task]:
        raise NotImplementedError


class FifoPolicy(SchedulingPolicy):
    """Submission-order (in-order) scheduling — the naive overlap baseline
    of Fig. 13(a)."""

    name = "fifo"

    def select(self, proc: str, ready: List[Task],
               context: "SimContext") -> Task:
        return min(ready, key=lambda t: context.submit_index[t.task_id])


@dataclass
class SimContext:
    """Read-only state handed to policies at each decision point."""

    tasks: Mapping[str, Task]
    submit_index: Mapping[str, int]
    dependents: Mapping[str, Tuple[str, ...]]
    completed: Set[str]
    now_s: float
    #: Live unfinished-dependency counts maintained incrementally by the
    #: simulator (distinct deps).  Policies see a consistent view: the
    #: counts are only read at dispatch points, after every completion
    #: of the current sim instant has been folded in.
    missing: Optional[Mapping[str, int]] = None
    #: Tasks whose ``deps`` tuple contains duplicates — for those the
    #: incremental count (which de-duplicates) disagrees with the
    #: historical definition below, so they take the slow path.
    dup_deps: frozenset = frozenset()

    def remaining_deps(self, task_id: str) -> int:
        missing = self.missing
        if missing is not None and task_id not in self.dup_deps:
            return missing[task_id]
        task = self.tasks[task_id]
        return sum(1 for d in task.deps if d not in self.completed)


class Simulator:
    """List scheduler over a fixed set of serial processors.

    Two execution strategies, both producing byte-identical traces:

    * an **index-based fast path** for :class:`FifoPolicy` — task ids and
      processors are interned to integer slots up front, each processor's
      ready set is a min-heap of submit indices (FIFO selection is exactly
      "smallest submit index"), and trace events are materialized in one
      batch at the end.  No per-event list copies, no policy callbacks,
      no per-task dict churn;
    * a **generic path** for pluggable policies, sharing the reference
      structure but feeding policies an incrementally-maintained
      unfinished-dependency count through :attr:`SimContext.missing`
      (``remaining_deps`` drops from O(deps) to O(1), which is the inner
      loop of the out-of-order heuristic's Eq. 5 contribution scan).

    :class:`ReferenceSimulator` keeps the original per-event loop as the
    executable specification; ``benchmarks/bench_sim_speed.py`` measures
    the fast paths against it and ``tests/hw/test_sim_vectorized.py``
    pins trace equality.
    """

    def __init__(self, processor_names: Iterable[str]):
        self.processor_names = list(processor_names)
        if not self.processor_names:
            raise SchedulingError("simulator needs at least one processor")

    def _validate(self, tasks: List[Task]) -> Dict[str, Task]:
        by_id = {t.task_id: t for t in tasks}
        if len(by_id) != len(tasks):
            raise DependencyError("duplicate task ids")
        known = set(self.processor_names)
        for t in tasks:
            if t.proc not in known:
                raise DependencyError(
                    f"task {t.task_id}: unknown processor {t.proc!r}"
                )
            for d in t.deps:
                if d not in by_id:
                    raise DependencyError(
                        f"task {t.task_id}: unknown dependency {d!r}"
                    )
        return by_id

    def run(self, tasks: List[Task],
            policy: Optional[SchedulingPolicy] = None) -> Trace:
        """Execute the task graph; returns the trace.

        Raises :class:`DependencyError` for unknown/cyclic dependencies or
        tasks assigned to unknown processors.
        """
        policy = policy if policy is not None else FifoPolicy()
        by_id = self._validate(tasks)
        # Exact-type check: a FifoPolicy subclass may override select().
        if type(policy) is FifoPolicy:
            return self._run_fifo(tasks)
        return self._run_generic(tasks, policy, by_id)

    # -- FIFO fast path -------------------------------------------------------

    def _run_fifo(self, tasks: List[Task]) -> Trace:
        """Index-based FIFO schedule (selection = min submit index).

        Equivalent to the generic loop under :class:`FifoPolicy` by
        construction: FIFO selection keys (submit indices) are unique, so
        a per-processor min-heap makes exactly the choices the reference
        ``min()`` scan makes, and dispatch order (processors in
        declaration order, one task per newly-idle processor) is
        preserved, so the trace is byte-identical.
        """
        n = len(tasks)
        proc_names = self.processor_names
        proc_index = {p: i for i, p in enumerate(proc_names)}
        n_procs = len(proc_names)
        id_index = {t.task_id: i for i, t in enumerate(tasks)}
        task_proc = [proc_index[t.proc] for t in tasks]
        durations = [t.duration_s for t in tasks]

        missing = [0] * n
        dependents: List[List[int]] = [[] for _ in range(n)]
        for i, t in enumerate(tasks):
            unique = set(t.deps)
            missing[i] = len(unique)
            for d in unique:
                dependents[id_index[d]].append(i)

        ready_heaps: List[List[int]] = [[] for _ in range(n_procs)]
        for i in range(n):
            if missing[i] == 0:
                ready_heaps[task_proc[i]].append(i)
        # Initial ready sets are filled in submission order — already
        # heap-ordered, but heapify keeps the invariant explicit.
        for heap in ready_heaps:
            heapq.heapify(heap)

        done = [False] * n
        proc_busy = [False] * n_procs
        # (finish_time, seq, slot) heap of running tasks; seq breaks ties
        # exactly like the reference's itertools.count() stream.
        running: List[Tuple[float, int, int]] = []
        # Dispatch log: (slot, start_s, end_s) in trace-append order.
        dispatched: List[Tuple[int, float, float]] = []
        seq = 0
        now = 0.0
        n_done = 0

        heappush, heappop = heapq.heappush, heapq.heappop

        def dispatch() -> None:
            nonlocal seq
            for p in range(n_procs):
                if proc_busy[p]:
                    continue
                heap = ready_heaps[p]
                if not heap:
                    continue
                i = heappop(heap)
                proc_busy[p] = True
                end = now + durations[i]
                heappush(running, (end, seq, i))
                seq += 1
                dispatched.append((i, now, end))

        dispatch()
        while running:
            now, _, finished = heappop(running)
            proc_busy[task_proc[finished]] = False
            done[finished] = True
            n_done += 1
            # Drain co-terminating tasks so dispatch sees all frees at once.
            while running and running[0][0] == now:
                _, _, other = heappop(running)
                proc_busy[task_proc[other]] = False
                done[other] = True
                n_done += 1
                for dep in dependents[other]:
                    missing[dep] -= 1
                    if missing[dep] == 0:
                        heappush(ready_heaps[task_proc[dep]], dep)
            for dep in dependents[finished]:
                missing[dep] -= 1
                if missing[dep] == 0:
                    heappush(ready_heaps[task_proc[dep]], dep)
            dispatch()

        if n_done != n:
            stuck = [t.task_id for i, t in enumerate(tasks) if not done[i]]
            raise DependencyError(
                f"deadlock: {len(stuck)} tasks never became ready "
                f"(cyclic dependencies?): {stuck[:5]}"
            )
        trace = Trace()
        events = trace.events
        for i, start, end in dispatched:
            t = tasks[i]
            events.append(TraceEvent(t.task_id, proc_names[task_proc[i]],
                                     start, end, t.tag, ops=t.ops))
        trace.validate_serial()
        return trace

    # -- generic (pluggable-policy) path --------------------------------------

    def _run_generic(self, tasks: List[Task], policy: SchedulingPolicy,
                     by_id: Dict[str, Task]) -> Trace:
        submit_index = {t.task_id: i for i, t in enumerate(tasks)}
        dependents: Dict[str, List[str]] = {t.task_id: [] for t in tasks}
        missing: Dict[str, int] = {}
        dup_deps = set()
        for t in tasks:
            unique = set(t.deps)
            missing[t.task_id] = len(unique)
            if len(unique) != len(t.deps):
                dup_deps.add(t.task_id)
            for d in unique:
                dependents[d].append(t.task_id)

        ready: Dict[str, List[Task]] = {p: [] for p in self.processor_names}
        for t in tasks:
            if missing[t.task_id] == 0:
                ready[t.proc].append(t)

        completed: Set[str] = set()
        context = SimContext(
            tasks=by_id,
            submit_index=submit_index,
            dependents={k: tuple(v) for k, v in dependents.items()},
            completed=completed,
            now_s=0.0,
            missing=missing,
            dup_deps=frozenset(dup_deps),
        )

        trace = Trace()
        # (finish_time, seq, task) heap of running tasks; seq breaks ties.
        running: List[Tuple[float, int, Task]] = []
        seq = itertools.count()
        proc_busy: Dict[str, bool] = {p: False for p in self.processor_names}
        now = 0.0
        n_done = 0

        def dispatch() -> None:
            context.now_s = now
            for proc in self.processor_names:
                if proc_busy[proc] or not ready[proc]:
                    continue
                task = policy.select(proc, list(ready[proc]), context)
                if task is None:
                    continue  # policy keeps the processor idle for now
                if task not in ready[proc]:
                    raise SchedulingError(
                        f"policy {policy.name!r} selected a non-ready task"
                    )
                ready[proc].remove(task)
                proc_busy[proc] = True
                end = now + task.duration_s
                heapq.heappush(running, (end, next(seq), task))
                trace.add(TraceEvent(task.task_id, proc, now, end, task.tag,
                                     ops=task.ops))

        dispatch()
        while running:
            now, _, finished = heapq.heappop(running)
            proc_busy[finished.proc] = False
            completed.add(finished.task_id)
            n_done += 1
            # Drain co-terminating tasks so dispatch sees all frees at once.
            while running and running[0][0] == now:
                _, _, other = heapq.heappop(running)
                proc_busy[other.proc] = False
                completed.add(other.task_id)
                n_done += 1
                for dep_id in dependents[other.task_id]:
                    missing[dep_id] -= 1
                    if missing[dep_id] == 0:
                        t = by_id[dep_id]
                        ready[t.proc].append(t)
            for dep_id in dependents[finished.task_id]:
                missing[dep_id] -= 1
                if missing[dep_id] == 0:
                    t = by_id[dep_id]
                    ready[t.proc].append(t)
            dispatch()

        if n_done != len(tasks):
            stuck = [t.task_id for t in tasks if t.task_id not in completed]
            raise DependencyError(
                f"deadlock: {len(stuck)} tasks never became ready "
                f"(cyclic dependencies?): {stuck[:5]}"
            )
        trace.validate_serial()
        return trace


class ReferenceSimulator(Simulator):
    """The original per-event simulator loop, kept as the executable spec.

    Byte-for-byte the pre-vectorization implementation: per-dispatch
    ready-list copies, O(ready) policy scans, per-dependency recount in
    ``remaining_deps`` (no :attr:`SimContext.missing`).  The speedup
    benchmark (``benchmarks/bench_sim_speed.py``) measures
    :class:`Simulator` against this on identical task graphs, and the
    equivalence tests require identical traces — so the fast paths can
    never silently drift from the specified schedule.
    """

    def run(self, tasks: List[Task],
            policy: Optional[SchedulingPolicy] = None) -> Trace:
        policy = policy if policy is not None else FifoPolicy()
        by_id = self._validate(tasks)

        submit_index = {t.task_id: i for i, t in enumerate(tasks)}
        dependents: Dict[str, List[str]] = {t.task_id: [] for t in tasks}
        missing: Dict[str, int] = {}
        for t in tasks:
            missing[t.task_id] = len(set(t.deps))
            for d in set(t.deps):
                dependents[d].append(t.task_id)

        ready: Dict[str, List[Task]] = {p: [] for p in self.processor_names}
        for t in tasks:
            if missing[t.task_id] == 0:
                ready[t.proc].append(t)

        completed: Set[str] = set()
        context = SimContext(
            tasks=by_id,
            submit_index=submit_index,
            dependents={k: tuple(v) for k, v in dependents.items()},
            completed=completed,
            now_s=0.0,
        )

        trace = Trace()
        running: List[Tuple[float, int, Task]] = []
        seq = itertools.count()
        proc_busy: Dict[str, bool] = {p: False for p in self.processor_names}
        now = 0.0
        n_done = 0

        def dispatch() -> None:
            for proc in self.processor_names:
                if proc_busy[proc] or not ready[proc]:
                    continue
                context.now_s = now
                task = policy.select(proc, list(ready[proc]), context)
                if task is None:
                    continue
                if task not in ready[proc]:
                    raise SchedulingError(
                        f"policy {policy.name!r} selected a non-ready task"
                    )
                ready[proc].remove(task)
                proc_busy[proc] = True
                end = now + task.duration_s
                heapq.heappush(running, (end, next(seq), task))
                trace.add(TraceEvent(task.task_id, proc, now, end, task.tag,
                                     ops=task.ops))

        dispatch()
        while running:
            now, _, finished = heapq.heappop(running)
            proc_busy[finished.proc] = False
            completed.add(finished.task_id)
            n_done += 1
            while running and running[0][0] == now:
                _, _, other = heapq.heappop(running)
                proc_busy[other.proc] = False
                completed.add(other.task_id)
                n_done += 1
                for dep_id in dependents[other.task_id]:
                    missing[dep_id] -= 1
                    if missing[dep_id] == 0:
                        t = by_id[dep_id]
                        ready[t.proc].append(t)
            for dep_id in dependents[finished.task_id]:
                missing[dep_id] -= 1
                if missing[dep_id] == 0:
                    t = by_id[dep_id]
                    ready[t.proc].append(t)
            dispatch()

        if n_done != len(tasks):
            stuck = [t.task_id for t in tasks if t.task_id not in completed]
            raise DependencyError(
                f"deadlock: {len(stuck)} tasks never became ready "
                f"(cyclic dependencies?): {stuck[:5]}"
            )
        trace.validate_serial()
        return trace


def critical_path_s(tasks: List[Task]) -> float:
    """Length of the dependency critical path (infinite processors bound)."""
    by_id = {t.task_id: t for t in tasks}
    finish: Dict[str, float] = {}

    def resolve(task_id: str, stack: Set[str]) -> float:
        if task_id in finish:
            return finish[task_id]
        if task_id in stack:
            raise DependencyError(f"cycle involving {task_id!r}")
        stack.add(task_id)
        task = by_id[task_id]
        start = max((resolve(d, stack) for d in task.deps), default=0.0)
        stack.remove(task_id)
        finish[task_id] = start + task.duration_s
        return finish[task_id]

    return max((resolve(t.task_id, set()) for t in tasks), default=0.0)
