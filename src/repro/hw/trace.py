"""Execution traces produced by the discrete-event simulator.

A :class:`Trace` records when every task ran on which processor.  It
provides the metrics the paper reports: makespan, per-processor busy time
and **bubble rate** (§3.4 — the fraction of a processor's active span it
spends stalled, 37% for naive in-order overlap on the critical path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SchedulingError


@dataclass(frozen=True)
class TraceEvent:
    """One task execution interval."""

    task_id: str
    proc: str
    start_s: float
    end_s: float
    tag: str = ""
    #: Arithmetic MatMul work (MAC pairs ×2) performed by the task —
    #: the roofline numerator; 0 for sync/vector-only tasks.
    ops: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class Trace:
    """A completed schedule."""

    events: List[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        if event.end_s < event.start_s:
            raise SchedulingError(
                f"event {event.task_id} ends before it starts"
            )
        self.events.append(event)

    @property
    def makespan_s(self) -> float:
        """End time of the last task (start at 0)."""
        if not self.events:
            return 0.0
        return max(e.end_s for e in self.events)

    def processors(self) -> List[str]:
        return sorted({e.proc for e in self.events})

    def events_on(self, proc: str) -> List[TraceEvent]:
        return sorted((e for e in self.events if e.proc == proc),
                      key=lambda e: e.start_s)

    def busy_seconds(self, proc: Optional[str] = None) -> float:
        """Total execution time on one processor (or all)."""
        events = self.events if proc is None else self.events_on(proc)
        return sum(e.duration_s for e in events)

    def busy_by_processor(self) -> Dict[str, float]:
        return {p: self.busy_seconds(p) for p in self.processors()}

    def ops_by_processor(self) -> Dict[str, float]:
        """Total MatMul arithmetic work (MAC pairs ×2) per processor —
        the numerator of the roofline analysis in
        :mod:`repro.obs.profile`."""
        out: Dict[str, float] = {p: 0.0 for p in self.processors()}
        for e in self.events:
            out[e.proc] += e.ops
        return out

    def span_s(self, proc: str) -> float:
        """First-start to last-end interval on one processor."""
        events = self.events_on(proc)
        if not events:
            return 0.0
        return max(e.end_s for e in events) - min(e.start_s for e in events)

    def bubble_rate(self, proc: str) -> float:
        """Idle fraction of the processor's active span (§3.4's metric)."""
        span = self.span_s(proc)
        if span <= 0:
            return 0.0
        return max(0.0, 1.0 - self.busy_seconds(proc) / span)

    def utilization(self, proc: str) -> float:
        """Busy fraction of the whole makespan."""
        makespan = self.makespan_s
        if makespan <= 0:
            return 0.0
        return self.busy_seconds(proc) / makespan

    def busy_by_tag(self) -> Dict[str, float]:
        """Total execution time grouped by task tag.

        Untagged events are grouped under ``"task"`` — the same default
        category :meth:`to_chrome_trace` exports — so tag-keyed reports
        and trace files agree on the bucket names.
        """
        out: Dict[str, float] = {}
        for e in self.events:
            tag = e.tag or "task"
            out[tag] = out.get(tag, 0.0) + e.duration_s
        return out

    def order_on(self, proc: str) -> List[str]:
        """Task ids in execution order on one processor."""
        return [e.task_id for e in self.events_on(proc)]

    def validate_serial(self) -> None:
        """Check no two tasks overlap on the same processor (Eq. 4)."""
        for proc in self.processors():
            events = self.events_on(proc)
            for a, b in zip(events, events[1:]):
                if b.start_s < a.end_s - 1e-12:
                    raise SchedulingError(
                        f"{proc}: tasks {a.task_id} and {b.task_id} overlap"
                    )

    def to_chrome_trace(self) -> List[dict]:
        """Export as Chrome-trace-format events (``chrome://tracing``,
        Perfetto).  Timestamps in microseconds; one 'thread' per
        processor.

        The output is deterministic: the processor→tid mapping follows
        sorted processor order and events are sorted by (timestamp,
        tid, name), so two exports of equal traces are byte-identical.
        """
        pids = {proc: i for i, proc in enumerate(self.processors())}
        out = []
        for proc in self.processors():
            out.append({
                "name": "thread_name", "ph": "M", "pid": 0,
                "tid": pids[proc], "args": {"name": proc},
            })
        body = []
        for e in self.events:
            record = {
                "name": e.task_id,
                "cat": e.tag or "task",
                "ph": "X",
                "pid": 0,
                "tid": pids[e.proc],
                "ts": e.start_s * 1e6,
                "dur": e.duration_s * 1e6,
            }
            if e.ops:
                record["args"] = {"ops": e.ops}
            body.append(record)
        body.sort(key=lambda ev: (ev["ts"], ev["tid"], ev["name"]))
        return out + body

    def save_chrome_trace(self, path: str) -> None:
        """Write the Chrome-trace JSON to ``path`` (deterministic bytes:
        stable event order, sorted keys, trailing newline)."""
        import json
        import os
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as f:
            json.dump(self.to_chrome_trace(), f, sort_keys=True)
            f.write("\n")

    @classmethod
    def from_chrome_trace(cls, events: List[dict]) -> "Trace":
        """Rebuild a :class:`Trace` from Chrome-trace events.

        Inverse of :meth:`to_chrome_trace` up to microsecond→second
        float rounding; only complete ('X') events are reconstructed,
        with processors resolved through the thread_name metadata.
        """
        procs: Dict[tuple, str] = {}
        for e in events:
            if e.get("ph") == "M" and e.get("name") == "thread_name":
                procs[(e.get("pid", 0), e["tid"])] = e["args"]["name"]
        trace = cls()
        for e in events:
            if e.get("ph") != "X":
                continue
            key = (e.get("pid", 0), e["tid"])
            if key not in procs:
                raise SchedulingError(
                    f"event {e.get('name')!r}: no thread_name metadata "
                    f"for pid/tid {key}"
                )
            tag = e.get("cat", "")
            trace.add(TraceEvent(
                task_id=e["name"],
                proc=procs[key],
                start_s=e["ts"] / 1e6,
                end_s=(e["ts"] + e["dur"]) / 1e6,
                tag="" if tag == "task" else tag,
                ops=float(e.get("args", {}).get("ops", 0.0)),
            ))
        return trace

    @classmethod
    def load_chrome_trace(cls, path: str) -> "Trace":
        """Load a trace previously written by :meth:`save_chrome_trace`."""
        import json
        with open(path) as f:
            return cls.from_chrome_trace(json.load(f))
