"""Processor specifications for the mobile SoC simulator.

Each processor (CPU cluster, GPU, NPU) carries analytical cost-model
parameters for matrix multiplication at each data type, vector-op
throughput for the float operators (norm/softmax/attention arithmetic),
dispatch overheads, and power draw.  The numbers are fitted against the
paper's own published measurements (Table 3 micro-benchmarks; §2.2 NPU
characteristics) by ``scripts/fit_latency.py``; see :mod:`repro.hw.soc`
for the fitted device presets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError


class ProcKind(enum.Enum):
    """The three heterogeneous processors of a mobile SoC."""

    CPU = "cpu"
    GPU = "gpu"
    NPU = "npu"


class DType(enum.Enum):
    """Numeric formats the cost model distinguishes."""

    INT8 = "int8"
    FP16 = "fp16"
    FP32 = "fp32"

    @property
    def bytes(self) -> int:
        return {"int8": 1, "fp16": 2, "fp32": 4}[self.value]


@dataclass(frozen=True)
class MatMulProfile:
    """Analytical MatMul cost parameters for one (processor, dtype) pair.

    Latency of an ``(M, K) x (K, N)`` product is modelled as a roofline
    with a row-utilization term::

        util    = min(1, (M / m_sat) ** m_exp)
        compute = 2*M*K*N / (peak_ops * util)
        memory  = weight_bytes / mem_bandwidth
        latency = overhead_s + combine(compute, memory)

    ``combine`` is ``max`` for accelerators that overlap weight streaming
    with arithmetic (NPU) and ``sum`` for engines where they serialize
    (mobile CPU/GPU — this fits the paper's Table 3 points better).

    ``m_sat`` is the row count at which the engine saturates — for mobile
    NPUs this is what makes the paper's chunk length of 256 optimal
    (Fig. 8: per-token cost falls until ~256 rows, then flattens).
    """

    peak_ops: float
    m_sat: float = 1.0
    m_exp: float = 0.0
    overhead_s: float = 0.0
    mem_bandwidth: float = 34e9
    combine: str = "max"
    min_util: float = 0.0

    def __post_init__(self) -> None:
        if self.combine not in ("max", "sum"):
            raise ConfigError(f"combine must be 'max' or 'sum', got {self.combine!r}")
        if self.peak_ops <= 0 or self.mem_bandwidth <= 0:
            raise ConfigError("peak_ops and mem_bandwidth must be positive")
        if not 0.0 <= self.min_util <= 1.0:
            raise ConfigError("min_util must be in [0, 1]")

    def utilization(self, m: int) -> float:
        """Fraction of peak throughput achieved at ``m`` rows.

        ``min_util`` floors the curve for the GEMV regime (decode, m=1)
        where real kernels switch to memory-bound paths rather than
        degrading with the batched-matmul utilization law.
        """
        if m <= 0:
            raise ConfigError(f"matmul rows must be positive, got {m}")
        if self.m_exp == 0.0 or m >= self.m_sat:
            return 1.0
        return max(self.min_util, (m / self.m_sat) ** self.m_exp)

    def latency(self, m: int, k: int, n: int,
                weight_bytes: Optional[int] = None) -> float:
        """Seconds to run one MatMul of the given shape."""
        if m <= 0 or k <= 0 or n <= 0:
            raise ConfigError(f"invalid matmul shape ({m}, {k}, {n})")
        ops = 2.0 * m * k * n
        compute = ops / (self.peak_ops * self.utilization(m))
        if weight_bytes is None:
            weight_bytes = k * n  # int8 weights by default
        memory = weight_bytes / self.mem_bandwidth
        if self.combine == "max":
            return self.overhead_s + max(compute, memory)
        return self.overhead_s + compute + memory


@dataclass(frozen=True)
class ProcessorSpec:
    """One processor of the SoC.

    ``matmul`` maps :class:`DType` to a :class:`MatMulProfile`; missing
    dtypes mean the processor cannot run MatMuls in that format.
    ``vector_ops_per_s`` is the elementwise float throughput used for
    norms, softmax, activation functions and quantize/dequantize steps.
    ``supports_per_group_matmul`` is False for mobile NPUs (Table 2): a
    per-group MatMul must be decomposed into sub-MatMuls plus a float
    reduction (the Fig. 4 penalty), which :mod:`repro.hw.latency` charges.
    """

    name: str
    kind: ProcKind
    matmul: Dict[DType, MatMulProfile]
    vector_ops_per_s: float
    dispatch_overhead_s: float
    active_power_w: float
    idle_power_w: float
    supports_per_group_matmul: bool = True
    freq_mhz: float = 1000.0

    def __post_init__(self) -> None:
        if not self.matmul:
            raise ConfigError(f"{self.name}: needs at least one MatMul profile")
        if self.vector_ops_per_s <= 0:
            raise ConfigError(f"{self.name}: vector throughput must be positive")
        if self.active_power_w < self.idle_power_w:
            raise ConfigError(
                f"{self.name}: active power below idle power"
            )

    def supports(self, dtype: DType) -> bool:
        """Whether the processor has a MatMul path for this dtype."""
        return dtype in self.matmul

    def matmul_profile(self, dtype: DType) -> MatMulProfile:
        try:
            return self.matmul[dtype]
        except KeyError:
            raise ConfigError(
                f"{self.name} has no {dtype.value} MatMul path"
            ) from None

    def vector_latency(self, elements: int, ops_per_element: float = 1.0) -> float:
        """Seconds to stream an elementwise/reduction op over ``elements``."""
        if elements < 0:
            raise ConfigError(f"negative element count {elements}")
        return (self.dispatch_overhead_s
                + elements * ops_per_element / self.vector_ops_per_s)
