"""NPU compute-graph lifecycle costs (Figure 2 of the paper).

Executing a DNN on a mobile NPU requires: configuring the environment,
*creating* the compute graph (IR translation + memory allocation,
300–500 ms), *optimizing* it (layout / execution order / operator fusion,
many seconds — 11.54 s for Gemma-2B on QNN), executing it, and freeing it.
Because the SDKs only compile **static shapes**, a naive engine must
re-create and re-optimize the graph for every new prompt length — the
first gap (§2.3) that chunk-sharing graphs close by pre-building
fixed-shape chunk graphs once.

Constants are calibrated against the paper's published measurements:
Gemma-2B full-graph build 360 ms / optimize 11.54 s, with per-operator
scaling so smaller (chunk/sub) graphs cost proportionally less.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError

#: Gemma-2B reference: 18 layers x ~12 NPU ops/layer = ~216 ops;
#: 360 ms build / 216 ops and 11.54 s optimize / 216 ops.
BUILD_S_PER_OP = 0.360 / 216
OPTIMIZE_S_PER_OP = 11.54 / 216


@dataclass(frozen=True)
class NpuGraphCostModel:
    """Costs of the five lifecycle stages for a graph of ``n_ops`` operators."""

    env_setup_s: float = 0.050
    build_s_per_op: float = BUILD_S_PER_OP
    optimize_s_per_op: float = OPTIMIZE_S_PER_OP
    build_base_s: float = 0.020
    optimize_base_s: float = 0.100
    free_s: float = 0.005

    def build_s(self, n_ops: int) -> float:
        """Graph creation: IR translation + memory allocation."""
        self._check(n_ops)
        return self.build_base_s + n_ops * self.build_s_per_op

    def optimize_s(self, n_ops: int) -> float:
        """Graph optimization: layout, execution order, operator fusion."""
        self._check(n_ops)
        return self.optimize_base_s + n_ops * self.optimize_s_per_op

    def prepare_s(self, n_ops: int) -> float:
        """Full preparation: setup + build + optimize."""
        return self.env_setup_s + self.build_s(n_ops) + self.optimize_s(n_ops)

    @staticmethod
    def _check(n_ops: int) -> None:
        if n_ops <= 0:
            raise HardwareError(f"graph must have >= 1 op, got {n_ops}")


def graph_ops_for_model(n_layers: int, ops_per_layer: int = 12) -> int:
    """Approximate NPU-op count for a full-model graph.

    ~12 NPU-visible ops per transformer block: 7 linears, 2 norms-adjacent
    quant/dequant pairs, and activation/add glue — matching the Gemma-2B
    calibration point.
    """
    if n_layers <= 0:
        raise HardwareError(f"n_layers must be positive, got {n_layers}")
    return n_layers * ops_per_layer
