"""Synthetic prompt *text* generators for the runnable examples.

The examples drive the public API the way the paper's motivating apps do:
UI automation ingests a screen view hierarchy, email reply ingests message
history, chat summarization ingests a dialogue.  These generators produce
deterministic pseudo-realistic text whose token counts (via
:class:`~repro.model.tokenizer.ToyTokenizer`) land in the paper's ranges.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import WorkloadError

_WIDGETS = ("Button", "TextView", "ImageView", "EditText", "CheckBox",
            "Switch", "RecyclerView", "LinearLayout", "FrameLayout")
_ACTIONS = ("click", "scroll", "input", "long-press", "toggle")
_WORDS = (
    "meeting schedule project deadline update review budget quarterly "
    "report client proposal feedback draft agenda follow-up reminder "
    "travel booking invoice approval timeline milestone deliverable team "
    "sync discussion summary notes action items priority status"
).split()


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def ui_view_hierarchy(n_nodes: int = 24, seed: int = 0) -> str:
    """An Android-style view-hierarchy dump (DroidTask-like input).

    ~24 nodes tokenize to the paper's 600-800 token range (each node line
    costs ~30 toy-tokenizer tokens).
    """
    if n_nodes <= 0:
        raise WorkloadError("n_nodes must be positive")
    rng = _rng(seed)
    lines = ["<hierarchy rotation=0>"]
    for i in range(n_nodes):
        widget = rng.choice(_WIDGETS)
        lines.append(
            f"<node index={i} class=android.widget.{widget} "
            f"resource-id=com.app:id/{widget.lower()}_{i} "
            f"clickable={str(rng.random() < 0.4).lower()} "
            f"bounds=[{rng.randint(0, 500)},{rng.randint(0, 1200)}]>"
        )
    lines.append("</hierarchy>")
    lines.append("Task: forward the unread emails to Alice. "
                 "Reply with the next UI action.")
    return "\n".join(lines)


def email_history(n_messages: int = 7, words_per_message: int = 95,
                  seed: int = 0) -> str:
    """A mailbox excerpt plus reply instruction (LongBench-like input).

    Defaults tokenize to the paper's 1450-1800 token range.
    """
    if n_messages <= 0 or words_per_message <= 0:
        raise WorkloadError("message counts must be positive")
    rng = _rng(seed)
    parts: List[str] = []
    for i in range(n_messages):
        body = " ".join(rng.choice(_WORDS) for _ in range(words_per_message))
        parts.append(
            f"From: colleague{i}@example.com\n"
            f"Subject: {rng.choice(_WORDS)} {rng.choice(_WORDS)}\n{body}"
        )
    parts.append("Write a short reply to the last email in my usual tone.")
    return "\n\n".join(parts)


def chat_dialogue(n_turns: int = 22, words_per_turn: int = 10,
                  seed: int = 0) -> str:
    """A two-party dialogue plus summarize instruction (Persona-Chat-like).

    Defaults tokenize to the paper's ~490-580 token range.
    """
    if n_turns <= 0 or words_per_turn <= 0:
        raise WorkloadError("turn counts must be positive")
    rng = _rng(seed)
    lines = []
    for i in range(n_turns):
        speaker = "User" if i % 2 == 0 else "Friend"
        text = " ".join(rng.choice(_WORDS) for _ in range(words_per_turn))
        lines.append(f"{speaker}: {text}")
    lines.append("Summarize this conversation in a few sentences.")
    return "\n".join(lines)
