"""Synthetic accuracy benchmarks standing in for the paper's LLM suites.

The paper evaluates quantization accuracy on LAMBADA, HellaSwag,
WinoGrande, OpenBookQA and MMLU (Table 6).  Those measure how much a
quantized model *diverges from the full-precision model's behaviour* on
its tasks; offline, with synthetic-weight models, the same quantity is
measured directly as **teacher agreement**: the FP32 model defines the
correct answer (its own argmax choice) and a quantized model scores the
fraction of items where it makes the same choice.

Two task shapes cover the benchmark styles:

* **cloze** (LAMBADA-style) — predict the next token after a context;
* **multiple-choice** (HellaSwag/WinoGrande/OpenBookQA/MMLU-style) —
  given a context and ``k`` candidate continuation tokens, pick the
  candidate the model scores highest.

The five named suites differ in context length, choice count and seed so
each probes a different operating point, mirroring how the real suites
stress different context regimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.model.config import ModelConfig
from repro.model.transformer import DecoderModel


@dataclass(frozen=True)
class AccuracyBenchmark:
    """A synthetic stand-in for one of the paper's accuracy suites."""

    name: str
    paper_benchmark: str
    kind: str  # 'cloze' | 'mcq'
    n_items: int
    context_len: int
    n_choices: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("cloze", "mcq"):
            raise WorkloadError(f"unknown benchmark kind {self.kind!r}")
        if self.n_items <= 0 or self.context_len <= 0:
            raise WorkloadError(f"{self.name}: non-positive sizes")
        if self.kind == "mcq" and self.n_choices < 2:
            raise WorkloadError(f"{self.name}: mcq needs >= 2 choices")


#: The five suites of Table 6, as synthetic counterparts.
ACCURACY_BENCHMARKS: Dict[str, AccuracyBenchmark] = {
    "lambada": AccuracyBenchmark(
        name="lambada", paper_benchmark="LAMBADA", kind="cloze",
        n_items=64, context_len=48, seed=11,
    ),
    "hellaswag": AccuracyBenchmark(
        name="hellaswag", paper_benchmark="HellaSwag", kind="mcq",
        n_items=64, context_len=40, n_choices=4, seed=22,
    ),
    "winogrande": AccuracyBenchmark(
        name="winogrande", paper_benchmark="WinoGrande", kind="mcq",
        n_items=64, context_len=24, n_choices=2, seed=33,
    ),
    "openbookqa": AccuracyBenchmark(
        name="openbookqa", paper_benchmark="OpenBookQA", kind="mcq",
        n_items=64, context_len=16, n_choices=4, seed=44,
    ),
    "mmlu": AccuracyBenchmark(
        name="mmlu", paper_benchmark="MMLU", kind="mcq",
        n_items=64, context_len=32, n_choices=4, seed=55,
    ),
}


def get_benchmark(name: str) -> AccuracyBenchmark:
    try:
        return ACCURACY_BENCHMARKS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; "
            f"available: {sorted(ACCURACY_BENCHMARKS)}"
        ) from None


@dataclass(frozen=True)
class BenchmarkItem:
    """One evaluation item: a context and (for mcq) candidate tokens."""

    context: np.ndarray
    choices: Tuple[int, ...] = ()


def build_items(benchmark: AccuracyBenchmark,
                config: ModelConfig) -> List[BenchmarkItem]:
    """Materialize the benchmark's items for a given model config."""
    rng = np.random.default_rng(benchmark.seed)
    items = []
    for _ in range(benchmark.n_items):
        context = rng.integers(4, config.vocab_size,
                               size=benchmark.context_len)
        if benchmark.kind == "mcq":
            choices = tuple(
                int(c) for c in rng.choice(
                    np.arange(4, config.vocab_size),
                    size=benchmark.n_choices, replace=False,
                )
            )
        else:
            choices = ()
        items.append(BenchmarkItem(context=context, choices=choices))
    return items


def model_answers(model: DecoderModel, benchmark: AccuracyBenchmark,
                  items: List[BenchmarkItem]) -> np.ndarray:
    """The model's answer index/token for every item."""
    answers = np.empty(len(items), dtype=np.int64)
    for i, item in enumerate(items):
        logits = model.prefill(item.context)[-1]
        if benchmark.kind == "cloze":
            answers[i] = int(np.argmax(logits))
        else:
            scores = logits[list(item.choices)]
            answers[i] = int(np.argmax(scores))
    return answers


def teacher_agreement(reference_answers: np.ndarray,
                      candidate_answers: np.ndarray) -> float:
    """Fraction of items where the candidate matches the reference."""
    if reference_answers.shape != candidate_answers.shape:
        raise WorkloadError("answer arrays must have identical shape")
    if reference_answers.size == 0:
        raise WorkloadError("no items to score")
    return float(np.mean(reference_answers == candidate_answers))


def evaluate(model: DecoderModel, reference_answers: np.ndarray,
             benchmark: AccuracyBenchmark,
             items: List[BenchmarkItem]) -> float:
    """Score ``model`` against pre-computed reference answers."""
    return teacher_agreement(reference_answers,
                             model_answers(model, benchmark, items))
