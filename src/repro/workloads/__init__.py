"""Synthetic workloads: request-length distributions for the paper's
datasets, prompt-text generators for the examples, calibration corpora,
and teacher-agreement accuracy benchmarks."""

from repro.workloads.benchmarks_acc import (
    ACCURACY_BENCHMARKS,
    AccuracyBenchmark,
    BenchmarkItem,
    build_items,
    evaluate,
    get_benchmark,
    model_answers,
    teacher_agreement,
)
from repro.workloads.corpus import calibration_corpus, heldout_sequences
from repro.workloads.datasets import (
    CHAT_SUMMARY,
    EMAIL_REPLY,
    QA_RETRIEVAL,
    UI_AUTOMATION,
    UI_AUTOMATION_SHORT,
    WORKLOADS,
    WorkloadSample,
    WorkloadSpec,
    geomean,
    get_workload,
    sample_workload,
)
from repro.workloads.prompts import chat_dialogue, email_history, ui_view_hierarchy

__all__ = [
    "WorkloadSpec",
    "WorkloadSample",
    "WORKLOADS",
    "UI_AUTOMATION",
    "UI_AUTOMATION_SHORT",
    "EMAIL_REPLY",
    "QA_RETRIEVAL",
    "CHAT_SUMMARY",
    "get_workload",
    "sample_workload",
    "geomean",
    "calibration_corpus",
    "heldout_sequences",
    "AccuracyBenchmark",
    "ACCURACY_BENCHMARKS",
    "BenchmarkItem",
    "get_benchmark",
    "build_items",
    "model_answers",
    "teacher_agreement",
    "evaluate",
    "ui_view_hierarchy",
    "email_history",
    "chat_dialogue",
]
