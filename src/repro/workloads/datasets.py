"""Synthetic mobile-LLM workloads matching the paper's datasets (§4.1).

The end-to-end experiments (Table 5, Fig. 1) depend only on the prompt and
output *token counts*; the real datasets cannot be shipped offline, so each
workload samples lengths uniformly from the ranges the paper publishes for
its datasets:

===================  ==================  ==============  ================
workload             paper dataset       prompt tokens   output tokens
===================  ==================  ==============  ================
ui_automation        DroidTask (clock)   656-827         1-5
ui_automation_short  DroidTask (short)   505-645         3-5
email_reply          LongBench 2wiki     1451-1672       2-4
qa_retrieval         LongBench TriviaQA  1511-1787       5-11
chat_summary         Persona-Chat        488-584         35-57
===================  ==================  ==============  ================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkloadSpec:
    """Length distribution of one workload."""

    name: str
    paper_dataset: str
    prompt_range: Tuple[int, int]
    output_range: Tuple[int, int]
    description: str = ""

    def __post_init__(self) -> None:
        lo, hi = self.prompt_range
        if not 0 < lo <= hi:
            raise WorkloadError(f"{self.name}: bad prompt range {lo}-{hi}")
        lo, hi = self.output_range
        if not 0 < lo <= hi:
            raise WorkloadError(f"{self.name}: bad output range {lo}-{hi}")


@dataclass(frozen=True)
class WorkloadSample:
    """One request: prompt and output token counts."""

    workload: str
    prompt_tokens: int
    output_tokens: int


UI_AUTOMATION = WorkloadSpec(
    name="ui_automation",
    paper_dataset="DroidTask: clock",
    prompt_range=(656, 827),
    output_range=(1, 5),
    description="Screen view-hierarchy understanding -> next UI action",
)

UI_AUTOMATION_SHORT = WorkloadSpec(
    name="ui_automation_short",
    paper_dataset="DroidTask: clock (short)",
    prompt_range=(505, 645),
    output_range=(3, 5),
    description="Shorter UI screens from the same task set",
)

EMAIL_REPLY = WorkloadSpec(
    name="email_reply",
    paper_dataset="Longbench: 2wiki-Multi-doc QA",
    prompt_range=(1451, 1672),
    output_range=(2, 4),
    description="Context-aware automated email reply over long history",
)

QA_RETRIEVAL = WorkloadSpec(
    name="qa_retrieval",
    paper_dataset="Longbench: TriviaQA",
    prompt_range=(1511, 1787),
    output_range=(5, 11),
    description="Retrieval-based question answering",
)

CHAT_SUMMARY = WorkloadSpec(
    name="chat_summary",
    paper_dataset="Persona-Chat",
    prompt_range=(488, 584),
    output_range=(35, 57),
    description="Chat summarization: balanced prompt/output lengths",
)

#: Registry of the five Table 5 workloads.
WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (UI_AUTOMATION, UI_AUTOMATION_SHORT, EMAIL_REPLY,
                 QA_RETRIEVAL, CHAT_SUMMARY)
}


def get_workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def sample_workload(spec: WorkloadSpec, n: int,
                    seed: int = 0) -> List[WorkloadSample]:
    """Draw ``n`` requests from a workload's length distribution."""
    if n <= 0:
        raise WorkloadError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    lo_p, hi_p = spec.prompt_range
    lo_o, hi_o = spec.output_range
    return [
        WorkloadSample(
            workload=spec.name,
            prompt_tokens=int(rng.integers(lo_p, hi_p + 1)),
            output_tokens=int(rng.integers(lo_o, hi_o + 1)),
        )
        for _ in range(n)
    ]


def geomean(values) -> float:
    """Geometric mean — how Table 5 aggregates per-sample speedups."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise WorkloadError("geomean of empty sequence")
    if np.any(values <= 0):
        raise WorkloadError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(values))))
