"""Calibration corpora for the quantization experiments.

The paper profiles outlier thresholds and importance "using large corpora
data at offline stage" (wikitext in Figs. 10-12).  Offline, we generate
token-id sequences for the synthetic models; spike tokens baked into the
synthetic embeddings make these sequences exhibit the measured outlier
statistics.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.model.config import ModelConfig


def calibration_corpus(config: ModelConfig, n_sequences: int = 8,
                       seq_len: int = 48, seed: int = 0) -> List[np.ndarray]:
    """Random token-id sequences avoiding the reserved control range."""
    if n_sequences <= 0 or seq_len <= 0:
        raise WorkloadError("corpus dimensions must be positive")
    if seq_len > config.max_context:
        raise WorkloadError(
            f"seq_len {seq_len} exceeds max_context {config.max_context}"
        )
    rng = np.random.default_rng(seed)
    return [
        rng.integers(4, config.vocab_size, size=seq_len)
        for _ in range(n_sequences)
    ]


def heldout_sequences(config: ModelConfig, n_sequences: int = 6,
                      seq_len: int = 48, seed: int = 1000) -> List[np.ndarray]:
    """Evaluation sequences disjoint from the calibration seed space."""
    return calibration_corpus(config, n_sequences, seq_len, seed=seed)
