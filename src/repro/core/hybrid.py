"""Hybrid dispatch: route each request to its fastest engine.

An extension motivated by a crossover the paper's Figure 14 grid doesn't
sample: below ~50 prompt tokens, llm.npu's fixed-chunk padding (§3.2 —
every prompt pays at least one full 256-token chunk) makes a GPU engine
*faster*.  A deployment-grade service can profile the crossover once and
dispatch per request: short prompts to the GPU engine, everything else to
llm.npu.

This matters for real mobile agents: a "tap confirm" follow-up turn is a
handful of tokens, while the screen-ingestion turns are hundreds.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.engine import EngineConfig, LlmNpuEngine
from repro.core.results import InferenceReport
from repro.errors import EngineError
from repro.hw.soc import SocSpec, get_device
from repro.model.config import ModelConfig, get_model_config


class HybridEngine:
    """Per-request dispatch between llm.npu and a GPU fallback engine.

    The crossover threshold is found at build time by profiling both
    engines over a probe grid (the "preparation stage" already exists, so
    one more profile pass is in keeping with llm.npu's design).
    """

    name = "hybrid(llm.npu+GPU)"

    def __init__(self, model: Union[str, ModelConfig],
                 device: Union[str, SocSpec],
                 config: Optional[EngineConfig] = None,
                 probe_lengths: Sequence[int] = (8, 16, 32, 48, 64, 96,
                                                 128, 192, 256)):
        model = get_model_config(model) if isinstance(model, str) else model
        device = get_device(device) if isinstance(device, str) else device
        self.model = model
        self.device = device
        # imported lazily: repro.baselines depends on repro.core, so a
        # top-level import here would be circular
        from repro.baselines.engines import TfliteEngine
        self.npu_engine = LlmNpuEngine(model, device, config)
        self.gpu_engine = TfliteEngine(model, device)
        self.crossover_tokens = self._profile_crossover(probe_lengths)

    def _profile_crossover(self, probe_lengths: Sequence[int]) -> int:
        """Smallest probed prompt length where llm.npu wins.

        Returns 0 if llm.npu wins everywhere (no fallback needed).
        """
        if not probe_lengths:
            raise EngineError("need at least one probe length")
        lengths = sorted(set(int(p) for p in probe_lengths))
        if any(p <= 0 for p in lengths):
            raise EngineError("probe lengths must be positive")
        crossover = 0
        for p in lengths:
            npu = self.npu_engine.prefill(p).latency_s
            gpu = self.gpu_engine.prefill(p).latency_s
            if gpu < npu:
                crossover = p + 1  # GPU still winning at p
        return crossover

    def pick(self, prompt_tokens: int) -> str:
        """Which engine a request of this length dispatches to."""
        if prompt_tokens <= 0:
            raise EngineError("prompt_tokens must be positive")
        return ("gpu" if prompt_tokens < self.crossover_tokens
                else "llm.npu")

    def infer(self, prompt_tokens: int,
              output_tokens: int = 0) -> InferenceReport:
        """Serve via the winning engine; the report names the choice."""
        if self.pick(prompt_tokens) == "gpu":
            report = self.gpu_engine.infer(prompt_tokens, output_tokens)
            engine_name = f"{self.name}->TFLite-GPU"
        else:
            report = self.npu_engine.infer(prompt_tokens, output_tokens)
            engine_name = f"{self.name}->llm.npu"
        return InferenceReport(
            engine=engine_name,
            model=report.model,
            device=report.device,
            prompt_tokens=report.prompt_tokens,
            output_tokens=report.output_tokens,
            prefill=report.prefill,
            decode_latency_s=report.decode_latency_s,
            energy=report.energy,
            memory_bytes=report.memory_bytes,
            extras=report.extras,
        )

    def prefill(self, prompt_tokens: int):
        if self.pick(prompt_tokens) == "gpu":
            return self.gpu_engine.prefill(prompt_tokens)
        return self.npu_engine.prefill(prompt_tokens)
