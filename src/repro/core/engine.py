"""The llm.npu engine: preparation stage + execution stage (§3.1).

``LlmNpuEngine`` wires the whole system together:

* **Preparation** (once per model/device): build the chunk-sharing graphs
  (§3.2), derive per-layer shadow profiles and the importance-based
  pruning set (§3.3), and size the hot-channel weight cache.
* **Execution** (per prompt): split the prompt into fixed chunks, lower
  them to a dependency task graph (Eqs. 2–3), schedule out-of-order with
  the max-C heuristic (§3.4) on the discrete-event simulator, then decode
  on the CPU (or GPU) backend.

The engine's feature switches (``chunking``, ``quant_mode``, ``policy``)
expose the ablation ladder of Fig. 19: naive NPU offload -> +chunk ->
+outlier -> +out-of-order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Union

from repro.core.decode import DecodeOptions, decode_latency_s
from repro.core.hot_channels import HotChannelPolicy, shadow_weight_bytes
from repro.core.pipeline import run_prefill
from repro.core.residency import NpuResidencyPlan, plan_npu_residency
from repro.core.results import InferenceReport, PrefillReport
from repro.errors import EngineError
from repro.graph.builder import BuildOptions, GraphBuilder, ShadowProfile
from repro.graph.chunk import ChunkSharingGraph
from repro.graph.memory_plan import plan_chunk_sharing
from repro.hw.sim import FaultInjector
from repro.hw.soc import SocSpec, get_device
from repro.model.config import ModelConfig, get_model_config
from repro.model.synthetic import depth_factor

#: Fraction of channels that are outlier channels per inference —
#: the paper's Fig. 10 measurement (0.1%–0.3%; we use the upper end).
OUTLIER_CHANNEL_FRACTION = 0.003


@dataclass(frozen=True)
class EngineConfig:
    """Feature switches and tuning knobs for :class:`LlmNpuEngine`.

    Defaults are the paper's shipping configuration: chunk length 256,
    85% outlier pruning, CPU float backend, out-of-order scheduling.
    """

    chunk_len: int = 256
    max_chunks: int = 8
    pruning_rate: float = 0.85
    float_backend: str = "cpu"
    decode_backend: str = "cpu"
    policy: str = "ooo"
    chunking: bool = True
    quant_mode: str = "shadow"  # 'shadow' | 'per-group' | 'per-tensor'
    equivalent_shapes: bool = True
    group_size: int = 32
    hot_policy: HotChannelPolicy = field(default_factory=HotChannelPolicy)
    outlier_channels: Optional[int] = None
    #: Optional third processor for shadow MatMuls (e.g. attention on the
    #: GPU, shadow compensation on the CPU) — extension beyond the paper.
    shadow_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.chunk_len <= 0 or self.max_chunks <= 0:
            raise EngineError("chunk_len and max_chunks must be positive")
        if not 0.0 <= self.pruning_rate <= 1.0:
            raise EngineError("pruning_rate must be in [0, 1]")
        if self.quant_mode not in ("shadow", "per-group", "per-tensor"):
            raise EngineError(f"unknown quant_mode {self.quant_mode!r}")
        if self.float_backend not in ("cpu", "gpu", "npu"):
            raise EngineError(
                "float_backend must be 'cpu', 'gpu' or 'npu'"
            )
        if self.decode_backend not in ("cpu", "gpu"):
            raise EngineError("decode_backend must be 'cpu' or 'gpu'")
        if self.shadow_backend is not None and self.shadow_backend not in (
                "cpu", "gpu", "npu"):
            raise EngineError(
                "shadow_backend must be 'cpu', 'gpu', 'npu' or None"
            )


class LlmNpuEngine:
    """llm.npu over the SoC simulator."""

    name = "llm.npu"

    def __init__(self, model: ModelConfig, device: SocSpec,
                 config: Optional[EngineConfig] = None,
                 fault_injector: Optional["FaultInjector"] = None,
                 tracer: Optional["Tracer"] = None):
        from repro.obs.tracer import as_tracer
        self.model = model
        self.device = device
        self.config = config if config is not None else EngineConfig()
        #: Optional deterministic fault source (see
        #: :class:`~repro.hw.sim.FaultInjector`).  ``infer`` consults it
        #: once per execution attempt; ``None`` means fault-free.
        self.fault_injector = fault_injector
        #: Engine-local tracer for direct (service-less) use: each
        #: ``infer`` appends prefill/decode spans to the ``engine``
        #: track on an internal clock that advances per call.  The
        #: service layer does NOT set this — it owns the service clock
        #: and emits request-scoped spans itself.
        self.tracer = as_tracer(tracer)
        self._trace_clock_s = 0.0
        cfg = self.config

        self.build_options = BuildOptions(
            float_backend=cfg.float_backend,
            per_group=(cfg.quant_mode == "per-group"),
            group_size=cfg.group_size,
            equivalent_shapes=cfg.equivalent_shapes,
        )
        self.builder = GraphBuilder(model, device, self.build_options)
        self.shadow_profiles = self._make_shadow_profiles()
        max_chunks = min(cfg.max_chunks,
                         max(1, model.max_context // cfg.chunk_len))
        self.graph = ChunkSharingGraph(
            self.builder, cfg.chunk_len, max_chunks,
            self.shadow_profiles if cfg.quant_mode == "shadow" else None,
        )

    # -- construction helpers -------------------------------------------------

    @classmethod
    def build(cls, model: Union[str, ModelConfig],
              device: Union[str, SocSpec], **kwargs) -> "LlmNpuEngine":
        """Convenience constructor accepting names or spec objects."""
        if isinstance(model, str):
            model = get_model_config(model)
        if isinstance(device, str):
            device = get_device(device)
        fault_injector = kwargs.pop("fault_injector", None)
        tracer = kwargs.pop("tracer", None)
        config = kwargs.pop("config", None)
        if config is None:
            config = EngineConfig(**kwargs)
        elif kwargs:
            config = replace(config, **kwargs)
        return cls(model, device, config, fault_injector=fault_injector,
                   tracer=tracer)

    def _make_shadow_profiles(self) -> Dict[int, ShadowProfile]:
        """Per-layer shadow profiles from the paper's measured statistics.

        Outlier channel counts follow Fig. 10 (0.1–0.3% of channels); the
        pruning set follows Fig. 12's importance profile — the U-shaped
        depth curve means the middle layers are pruned first.
        """
        cfg = self.config
        n_layers = self.model.n_layers
        outliers = cfg.outlier_channels
        if outliers is None:
            outliers = max(2, int(round(
                self.model.hidden_size * OUTLIER_CHANNEL_FRACTION
            )))
        importance = {
            layer: depth_factor(layer, n_layers, "u")
            for layer in range(n_layers)
        }
        ranked = sorted(importance, key=lambda l: (importance[l], l))
        n_pruned = int(round(n_layers * cfg.pruning_rate))
        pruned = set(ranked[:n_pruned])
        avg_out = self.model.hidden_size  # typical column height
        return {
            layer: ShadowProfile(
                outlier_channels=outliers,
                pruned=layer in pruned,
                hot_hit_rate=(cfg.hot_policy.hit_rate
                              if cfg.hot_policy.enabled else 1.0),
                cold_bytes_per_miss=avg_out * 4,
            )
            for layer in range(n_layers)
        }

    # -- preparation -----------------------------------------------------------

    def preparation_s(self) -> float:
        """One-time preparation cost (graph build + optimize)."""
        if self.config.chunking:
            return self.graph.preparation_s()
        return 0.0  # the non-chunking variant pays per prompt instead

    # -- execution -------------------------------------------------------------

    def prefill(self, prompt_tokens: int,
                cached_tokens: int = 0) -> PrefillReport:
        """Simulate prefilling ``prompt_tokens`` new tokens.

        ``cached_tokens`` reuses an existing KV cache from earlier turns
        (multi-turn conversations); reuse is chunk-aligned because the
        graphs have static shapes (§3.2).
        """
        if prompt_tokens <= 0:
            raise EngineError("prompt_tokens must be positive")
        if cached_tokens < 0:
            raise EngineError("cached_tokens must be non-negative")
        cfg = self.config
        include_shadow = cfg.quant_mode == "shadow"
        if cfg.chunking:
            plans = self.graph.plans_for_prompt(prompt_tokens,
                                                cached_tokens)
            extra = 0.0
        else:
            # Fig. 7(a): one monolithic prompt graph, re-built and
            # re-optimized for this prompt length (the naive NPU baseline).
            rows = max(32, prompt_tokens)
            plans = [self.builder.build_chunk(
                0, rows,
                self.shadow_profiles if include_shadow else None,
            )]
            extra = self.graph.naive_per_prompt_preparation_s()
        return run_prefill(
            plans, self.device, prompt_tokens,
            float_backend=cfg.float_backend,
            policy=cfg.policy,
            include_shadow=include_shadow,
            extra_latency_s=extra,
            shadow_backend=cfg.shadow_backend,
        )

    def decode(self, prompt_tokens: int, output_tokens: int) -> float:
        """Decode latency; ``prompt_tokens`` is the total KV length."""
        options = DecodeOptions(
            backend=self.config.decode_backend,
            per_group=(self.config.quant_mode == "per-group"),
            group_size=self.config.group_size,
        )
        proc = self.device.processors[self.config.decode_backend]
        return decode_latency_s(self.model, proc, prompt_tokens,
                                output_tokens, options)

    def check_fault(self, now_s: float = 0.0) -> None:
        """Consume one fault draw for an execution attempt.

        Raises :class:`~repro.errors.TransientEngineError` or
        :class:`~repro.errors.PermanentEngineError` when the attached
        injector scripts a fault for this attempt; a no-op otherwise.
        ``now_s`` only timestamps the injector's trace event.
        """
        if self.fault_injector is not None:
            self.fault_injector.check(now_s=now_s)

    def infer(self, prompt_tokens: int,
              output_tokens: int = 0,
              cached_tokens: int = 0) -> InferenceReport:
        """Full prefill + decode with energy and memory accounting.

        With a :attr:`fault_injector` attached, each call is one
        execution attempt and may raise a typed engine error instead of
        returning a report.
        """
        self.check_fault(now_s=self._trace_clock_s)
        prefill = self.prefill(prompt_tokens, cached_tokens)
        total_context = cached_tokens + prompt_tokens
        decode_s = self.decode(total_context, output_tokens)

        energy_model = self.device.energy_model()
        busy = dict(prefill.trace.busy_by_processor()) if prefill.trace else {}
        # During prefill the float backend plays a helper role (attention
        # GEMMs / shadow MatMuls / syncs: bandwidth-bound, few cores) and
        # draws a fraction of all-lanes power; decode runs the all-cores
        # GEMV engine at full power.
        helper = {
            self.config.float_backend: busy.get(
                self.config.float_backend, 0.0
            ),
        }
        busy[self.config.decode_backend] = (
            busy.get(self.config.decode_backend, 0.0) + decode_s
        )
        makespan = prefill.latency_s + decode_s
        energy = energy_model.energy(busy, makespan, helper_seconds=helper)

        prefill_busy = (prefill.trace.busy_by_processor()
                        if prefill.trace else {})
        prefill_energy = energy_model.energy(
            prefill_busy, prefill.latency_s,
            helper_seconds={
                self.config.float_backend: prefill_busy.get(
                    self.config.float_backend, 0.0
                ),
            },
        ).total_j

        if self.tracer.enabled:
            t0 = self._trace_clock_s
            thread = self.model.name
            prefill_end = t0 + prefill.latency_s
            self.tracer.span(
                "prefill", proc="engine", thread=thread, start_s=t0,
                end_s=prefill_end, cat="prefill",
                prompt_tokens=prompt_tokens, cached_tokens=cached_tokens,
                n_chunks=prefill.n_chunks,
                bubble_rate=prefill.npu_bubble_rate,
            )
            if decode_s > 0:
                self.tracer.span(
                    "decode", proc="engine", thread=thread,
                    start_s=prefill_end, end_s=prefill_end + decode_s,
                    cat="decode", output_tokens=output_tokens,
                )
            self._trace_clock_s = prefill_end + decode_s

        return InferenceReport(
            engine=self.name,
            model=self.model.name,
            device=self.device.name,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            prefill=prefill,
            decode_latency_s=decode_s,
            energy=energy,
            memory_bytes=self.memory_bytes(total_context + output_tokens),
            extras={"prefill_energy_j": prefill_energy,
                    "cached_tokens": float(cached_tokens)},
        )

    def profile_subgraphs(self, chunk_index: int = 0):
        """The offline per-subgraph latency profile (§3.4's preparation
        input: "llm.npu profiles all the subgraph execution time and their
        dependency offline").

        Returns a :class:`~repro.eval.report.Table` of every subgraph of
        the given chunk with its backend, latency and shareability.
        """
        from repro.eval.report import Table
        plan = self.graph.plan_for_chunk(chunk_index)
        table = Table(
            title=f"Subgraph profile — {self.model.name}, "
                  f"chunk {chunk_index} (kv={plan.kv_len})",
            columns=["subgraph", "backend", "latency ms", "static",
                     "weights MiB"],
        )
        for sg in plan.subgraphs:
            table.add_row(
                sg.name,
                "npu" if sg.is_npu else self.config.float_backend,
                sg.latency_s * 1e3,
                "yes" if sg.static else "no",
                sg.weight_bytes / 2**20,
            )
        table.add_note(
            f"NPU total {plan.npu_latency_s() * 1e3:.1f} ms, float total "
            f"{plan.float_latency_s() * 1e3:.1f} ms"
        )
        return table

    # -- accounting -------------------------------------------------------------

    def npu_residency(self) -> NpuResidencyPlan:
        """Which NPU subgraphs keep weights resident in the ~4 GB region.

        Models that exceed the region (e.g. LLaMA-2-7B at INT8) keep their
        FFN weights resident first (§4's rule) and stream the rest from
        DRAM per use — a cost the MatMul latency model's bandwidth term
        already charges.
        """
        return plan_npu_residency(
            self.model,
            self.device.npu_region_bytes,
            bytes_per_weight=self.build_options.weight_dtype.bytes,
        )

    def n_unpruned_layers(self) -> int:
        return sum(1 for p in self.shadow_profiles.values() if not p.pruned)

    def shadow_weight_bytes(self) -> int:
        """Resident float shadow weights (hot-channel cache, §3.3)."""
        if self.config.quant_mode != "shadow":
            return 0
        return shadow_weight_bytes(
            self.model, self.n_unpruned_layers(), self.config.hot_policy
        )

    def memory_bytes(self, total_tokens: int) -> int:
        """Peak memory: weights + graphs + KV cache + shadow weights."""
        plan = plan_chunk_sharing(
            self.graph, max(total_tokens, 1),
            shadow_weights_bytes=self.shadow_weight_bytes(),
        )
        return plan.total_bytes

    def validate_memory(self, total_tokens: int) -> "SocMemory":
        """Allocate the engine's footprint into the device's memory spaces.

        Raises :class:`~repro.errors.MemoryLimitError` if the device
        cannot hold the model (the check a real loader performs before
        committing to a configuration).  Returns the populated
        :class:`~repro.hw.memory.SocMemory` for inspection.
        """
        from repro.graph.memory_plan import plan_chunk_sharing as _plan
        memory = self.device.memory()
        plan = _plan(self.graph, max(total_tokens, 1),
                     shadow_weights_bytes=self.shadow_weight_bytes())
        residency = self.npu_residency()
        # weights: all in DRAM; the resident subset also maps into the
        # NPU region; shadow float columns live in CPU space
        memory.dram.alloc("weights", plan.weights_bytes)
        memory.npu.alloc("weights.resident", residency.resident_bytes)
        memory.alloc_shared("shadow-weights", plan.shadow_weights_bytes,
                            spaces=[memory.cpu])
        # activations: static subgraph workspaces live in the NPU region
        # too (they are graph buffers); dynamic + KV stay in DRAM/CPU
        memory.dram.alloc("activations", plan.activation_bytes)
        memory.dram.alloc("kv-cache", plan.kv_cache_bytes)
        memory.cpu.alloc("kv-cache", plan.kv_cache_bytes)
        return memory
