"""Result records returned by the engines and the service layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hw.energy import EnergyBreakdown
from repro.hw.trace import Trace


@dataclass(frozen=True)
class PrefillReport:
    """Outcome of one simulated prefill."""

    prompt_tokens: int
    padded_tokens: int
    n_chunks: int
    latency_s: float
    trace: Optional[Trace] = None
    npu_busy_s: float = 0.0
    float_busy_s: float = 0.0
    npu_bubble_rate: float = 0.0
    graph_prepare_s: float = 0.0

    @property
    def tokens_per_s(self) -> float:
        if self.latency_s <= 0:
            return float("inf")
        return self.prompt_tokens / self.latency_s


@dataclass(frozen=True)
class InferenceReport:
    """End-to-end (prefill + decode) outcome."""

    engine: str
    model: str
    device: str
    prompt_tokens: int
    output_tokens: int
    prefill: PrefillReport
    decode_latency_s: float
    energy: Optional[EnergyBreakdown] = None
    memory_bytes: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def prefill_latency_s(self) -> float:
        return self.prefill.latency_s

    @property
    def prefill_tokens_per_s(self) -> float:
        return self.prefill.tokens_per_s

    @property
    def e2e_latency_s(self) -> float:
        return self.prefill.latency_s + self.decode_latency_s

    @property
    def ttft_s(self) -> float:
        """Time to first token — the prefill latency, the quantity the
        paper's whole design targets."""
        return self.prefill.latency_s

    @property
    def tpot_s(self) -> float:
        """Time per output token during decoding (0 if nothing decoded)."""
        if self.output_tokens <= 0:
            return 0.0
        return self.decode_latency_s / self.output_tokens

    @property
    def energy_j(self) -> float:
        return self.energy.total_j if self.energy is not None else 0.0

    def timeline(self, decode_backend: str = "cpu"):
        """Unified prefill+decode trace for visualization.

        Returns a :class:`~repro.hw.trace.Trace` containing the prefill
        schedule followed by one event per decoded token on the decode
        backend; export with ``.save_chrome_trace(path)``.
        """
        from repro.hw.trace import Trace, TraceEvent
        timeline = Trace()
        start = 0.0
        if self.prefill.trace is not None:
            for event in self.prefill.trace.events:
                timeline.add(event)
            start = self.prefill.trace.makespan_s
        if self.output_tokens > 0:
            per_token = self.decode_latency_s / self.output_tokens
            for i in range(self.output_tokens):
                timeline.add(TraceEvent(
                    task_id=f"decode.t{i}",
                    proc=decode_backend,
                    start_s=start + i * per_token,
                    end_s=start + (i + 1) * per_token,
                    tag="decode",
                ))
        return timeline

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.engine} | {self.model} on {self.device} | "
            f"prompt={self.prompt_tokens} out={self.output_tokens} | "
            f"prefill={self.prefill_latency_s:.3f}s "
            f"({self.prefill_tokens_per_s:.0f} tok/s) "
            f"decode={self.decode_latency_s:.3f}s "
            f"e2e={self.e2e_latency_s:.3f}s energy={self.energy_j:.1f}J"
        )


# -- service-level metrics (§3.1's LLM-as-a-System-Service) -------------------


@dataclass(frozen=True)
class TierStats:
    """Per-tier service metrics over one workload.

    Latency percentiles cover *completed* requests only; rejected,
    timed-out, cancelled and failed requests are counted but contribute
    no latency samples (they never produced an answer).
    """

    tier: str
    n_requests: int
    n_completed: int
    n_rejected: int
    n_timeout: int
    n_cancelled: int
    n_failed: int
    n_retries: int
    p50_turnaround_s: float
    p95_turnaround_s: float
    mean_queueing_s: float
    throughput_rps: float
    #: TTFT/ITL over completed requests (0.0 when no samples — e.g.
    #: ITL for workloads that decode nothing).
    p50_ttft_s: float = 0.0
    p95_ttft_s: float = 0.0
    mean_itl_s: float = 0.0

    @property
    def completion_rate(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.n_completed / self.n_requests


@dataclass(frozen=True)
class ServiceMetrics:
    """Aggregate + per-tier view of one served workload."""

    span_s: float
    n_requests: int
    n_completed: int
    n_rejected: int
    n_timeout: int
    n_cancelled: int
    n_failed: int
    n_retries: int
    npu_busy_s: float
    npu_utilization: float
    busy_fraction: float
    total_energy_j: float
    tiers: Dict[str, TierStats]

    def tier(self, name: str) -> TierStats:
        from repro.errors import EngineError
        try:
            return self.tiers[name]
        except KeyError:
            raise EngineError(
                f"no requests in tier {name!r}; "
                f"tiers seen: {sorted(self.tiers)}"
            ) from None


#: Request terminal states counted by the service metrics.
SERVICE_STATUSES = ("completed", "rejected", "timeout", "cancelled",
                    "failed")


def summarize_service(records, registry=None) -> ServiceMetrics:
    """Fold a list of ``ServedRequest`` records into service metrics.

    The span is the wall-clock window from the earliest arrival to the
    latest finish across all engines; NPU utilization is the summed NPU
    busy time of completed prefills over that span (with independent
    per-engine timelines it can exceed 1 when several engines run
    concurrently).

    The accounting runs through a
    :class:`~repro.obs.metrics.MetricsRegistry` — counters for request
    outcomes and engine-time totals, histograms for latency samples —
    and the returned :class:`ServiceMetrics` is a read-out of those
    instruments.  Pass ``registry`` to aggregate into an existing
    registry (e.g. the service's own, for a ``--metrics-out`` export);
    by default a fresh one is used, so repeated calls stay idempotent.
    Aggregation preserves the observation order of ``records``, so the
    sums and percentiles are bit-identical to the pre-registry
    accounting.
    """
    from repro.errors import EngineError
    from repro.obs.metrics import as_registry
    records = list(records)
    if not records:
        raise EngineError("no requests served yet")
    reg = as_registry(registry)

    span = (max(r.finish_s for r in records)
            - min(r.arrival_s for r in records))
    tier_names: List[str] = []
    for r in records:
        if r.tier not in tier_names:
            tier_names.append(r.tier)
        reg.counter("service_requests_total",
                    tier=r.tier, status=r.status).inc()
        reg.counter("service_retries_total", tier=r.tier).inc(r.retries)
        if r.status == "completed":
            reg.histogram("service_turnaround_s",
                          tier=r.tier).observe(r.turnaround_s)
            reg.histogram("service_queueing_s",
                          tier=r.tier).observe(r.queueing_s)
            ttft = getattr(r, "ttft_s", None)
            if ttft is not None:
                reg.histogram("service_ttft_s",
                              tier=r.tier).observe(ttft)
            itl = getattr(r, "itl_s", None)
            if itl is not None:
                reg.histogram("service_itl_s", tier=r.tier).observe(itl)
            reg.counter("service_busy_s").inc(r.service_s)
            if r.report is not None:
                reg.counter("service_npu_busy_s").inc(
                    r.report.prefill.npu_busy_s)
                reg.counter("service_energy_j").inc(r.report.energy_j)

    def status_count(tier: str, status: str) -> int:
        return int(reg.value("service_requests_total",
                             tier=tier, status=status))

    tiers: Dict[str, TierStats] = {}
    for name in sorted(tier_names):
        counts = {s: status_count(name, s) for s in SERVICE_STATUSES}
        turnaround = reg.histogram("service_turnaround_s", tier=name)
        queueing = reg.histogram("service_queueing_s", tier=name)
        ttft = reg.histogram("service_ttft_s", tier=name)
        itl = reg.histogram("service_itl_s", tier=name)
        n_done = counts["completed"]
        tiers[name] = TierStats(
            tier=name,
            n_requests=sum(counts.values()),
            n_completed=n_done,
            n_rejected=counts["rejected"],
            n_timeout=counts["timeout"],
            n_cancelled=counts["cancelled"],
            n_failed=counts["failed"],
            n_retries=int(reg.value("service_retries_total", tier=name)),
            p50_turnaround_s=(turnaround.percentile(50)
                              if turnaround.count else 0.0),
            p95_turnaround_s=(turnaround.percentile(95)
                              if turnaround.count else 0.0),
            mean_queueing_s=queueing.mean,
            throughput_rps=(n_done / span if span > 0 else 0.0),
            p50_ttft_s=ttft.percentile(50) if ttft.count else 0.0,
            p95_ttft_s=ttft.percentile(95) if ttft.count else 0.0,
            mean_itl_s=itl.mean if itl.count else 0.0,
        )

    npu_busy = reg.value("service_npu_busy_s")
    busy = reg.value("service_busy_s")
    return ServiceMetrics(
        span_s=span,
        n_requests=sum(t.n_requests for t in tiers.values()),
        n_completed=sum(t.n_completed for t in tiers.values()),
        n_rejected=sum(t.n_rejected for t in tiers.values()),
        n_timeout=sum(t.n_timeout for t in tiers.values()),
        n_cancelled=sum(t.n_cancelled for t in tiers.values()),
        n_failed=sum(t.n_failed for t in tiers.values()),
        n_retries=sum(t.n_retries for t in tiers.values()),
        npu_busy_s=npu_busy,
        npu_utilization=(npu_busy / span if span > 0 else 0.0),
        busy_fraction=(busy / span if span > 0 else 0.0),
        total_energy_j=reg.value("service_energy_j"),
        tiers=tiers,
    )


def goodput_rps(records, ttft_slo_s) -> float:
    """SLO-met requests per second over one served workload.

    A request counts toward goodput when it completed *and* its TTFT
    met the SLO bound — ``ttft_slo_s`` is either one bound for every
    request or a ``{tier_name: bound}`` mapping (tiers absent from the
    mapping are unbounded).  The denominator is the same
    earliest-arrival-to-latest-finish span
    :func:`summarize_service` uses, so goodput and throughput are
    directly comparable.
    """
    from repro.errors import EngineError
    records = list(records)
    if not records:
        raise EngineError("no requests served yet")

    def bound(tier: str) -> float:
        if isinstance(ttft_slo_s, dict):
            return float(ttft_slo_s.get(tier, float("inf")))
        return float(ttft_slo_s)

    span = (max(r.finish_s for r in records)
            - min(r.arrival_s for r in records))
    good = 0
    for r in records:
        if r.status != "completed":
            continue
        ttft = getattr(r, "ttft_s", None)
        if ttft is not None and ttft <= bound(r.tier):
            good += 1
    return good / span if span > 0 else 0.0
