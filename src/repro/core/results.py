"""Result records returned by the engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hw.energy import EnergyBreakdown
from repro.hw.trace import Trace


@dataclass(frozen=True)
class PrefillReport:
    """Outcome of one simulated prefill."""

    prompt_tokens: int
    padded_tokens: int
    n_chunks: int
    latency_s: float
    trace: Optional[Trace] = None
    npu_busy_s: float = 0.0
    float_busy_s: float = 0.0
    npu_bubble_rate: float = 0.0
    graph_prepare_s: float = 0.0

    @property
    def tokens_per_s(self) -> float:
        if self.latency_s <= 0:
            return float("inf")
        return self.prompt_tokens / self.latency_s


@dataclass(frozen=True)
class InferenceReport:
    """End-to-end (prefill + decode) outcome."""

    engine: str
    model: str
    device: str
    prompt_tokens: int
    output_tokens: int
    prefill: PrefillReport
    decode_latency_s: float
    energy: Optional[EnergyBreakdown] = None
    memory_bytes: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def prefill_latency_s(self) -> float:
        return self.prefill.latency_s

    @property
    def prefill_tokens_per_s(self) -> float:
        return self.prefill.tokens_per_s

    @property
    def e2e_latency_s(self) -> float:
        return self.prefill.latency_s + self.decode_latency_s

    @property
    def ttft_s(self) -> float:
        """Time to first token — the prefill latency, the quantity the
        paper's whole design targets."""
        return self.prefill.latency_s

    @property
    def tpot_s(self) -> float:
        """Time per output token during decoding (0 if nothing decoded)."""
        if self.output_tokens <= 0:
            return 0.0
        return self.decode_latency_s / self.output_tokens

    @property
    def energy_j(self) -> float:
        return self.energy.total_j if self.energy is not None else 0.0

    def timeline(self, decode_backend: str = "cpu"):
        """Unified prefill+decode trace for visualization.

        Returns a :class:`~repro.hw.trace.Trace` containing the prefill
        schedule followed by one event per decoded token on the decode
        backend; export with ``.save_chrome_trace(path)``.
        """
        from repro.hw.trace import Trace, TraceEvent
        timeline = Trace()
        start = 0.0
        if self.prefill.trace is not None:
            for event in self.prefill.trace.events:
                timeline.add(event)
            start = self.prefill.trace.makespan_s
        if self.output_tokens > 0:
            per_token = self.decode_latency_s / self.output_tokens
            for i in range(self.output_tokens):
                timeline.add(TraceEvent(
                    task_id=f"decode.t{i}",
                    proc=decode_backend,
                    start_s=start + i * per_token,
                    end_s=start + (i + 1) * per_token,
                    tag="decode",
                ))
        return timeline

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.engine} | {self.model} on {self.device} | "
            f"prompt={self.prompt_tokens} out={self.output_tokens} | "
            f"prefill={self.prefill_latency_s:.3f}s "
            f"({self.prefill_tokens_per_s:.0f} tok/s) "
            f"decode={self.decode_latency_s:.3f}s "
            f"e2e={self.e2e_latency_s:.3f}s energy={self.energy_j:.1f}J"
        )
