"""NPU memory-region residency planning (§4, implementation note (2)).

Hexagon NPUs address a bounded memory region (~4 GB) that can be smaller
than the LLM weights (LLaMA-2-7B is ~6.3 GB at INT8).  llm.npu therefore
*prioritizes computationally intensive operators — the FFNs — for NPU
residency*; the remaining weights live only in DRAM and stream into the
region per use (the DMA cost is the ``mem_bandwidth`` term the latency
model already charges every MatMul, so streaming does not change the
latency accounting — residency is a memory-space planning problem).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import EngineError
from repro.graph.ops import SG_FFN, SG_QKV, SG_WO
from repro.model.config import ModelConfig

#: Region bytes reserved for graph structures, activation buffers and the
#: driver's own allocations (not available for resident weights).
DEFAULT_RESERVE_BYTES = 512 * 1024 * 1024

#: NPU subgraph positions in residency-priority order: FFN first (the
#: paper's rule — largest compute per dispatch), then QKV, then O.
PRIORITY_ORDER = (SG_FFN, SG_QKV, SG_WO)


def npu_weight_bytes_by_subgraph(
    config: ModelConfig, bytes_per_weight: int = 1
) -> Dict[Tuple[int, int], int]:
    """Weight bytes of every NPU subgraph, keyed by (layer, position)."""
    h, f = config.hidden_size, config.ffn_hidden
    n_up = 2 if config.gated_ffn else 1
    per_position = {
        SG_QKV: h * (config.q_dim + 2 * config.kv_dim) * bytes_per_weight,
        SG_WO: config.q_dim * h * bytes_per_weight,
        SG_FFN: (n_up + 1) * h * f * bytes_per_weight,
    }
    return {
        (layer, pos): nbytes
        for layer in range(config.n_layers)
        for pos, nbytes in per_position.items()
    }


@dataclass(frozen=True)
class NpuResidencyPlan:
    """Which NPU subgraphs keep their weights resident in the NPU region."""

    resident: FrozenSet[Tuple[int, int]]
    streamed: FrozenSet[Tuple[int, int]]
    resident_bytes: int
    total_bytes: int
    budget_bytes: int

    @property
    def fully_resident(self) -> bool:
        return not self.streamed

    @property
    def resident_fraction(self) -> float:
        """Byte fraction of NPU weights that stay resident."""
        if self.total_bytes == 0:
            return 1.0
        return self.resident_bytes / self.total_bytes

    def is_resident(self, layer: int, position: int) -> bool:
        return (layer, position) in self.resident


def plan_npu_residency(
    config: ModelConfig,
    npu_region_bytes: int,
    bytes_per_weight: int = 1,
    reserve_bytes: int = DEFAULT_RESERVE_BYTES,
) -> NpuResidencyPlan:
    """Greedy FFN-first packing of NPU subgraph weights into the region.

    Within a priority class, earlier layers win (their graphs execute
    first in every chunk, maximizing reuse before any eviction would be
    needed).
    """
    if npu_region_bytes <= 0:
        raise EngineError("npu_region_bytes must be positive")
    if reserve_bytes < 0:
        raise EngineError("reserve_bytes must be non-negative")
    budget = max(0, npu_region_bytes - reserve_bytes)
    sizes = npu_weight_bytes_by_subgraph(config, bytes_per_weight)

    order: List[Tuple[int, int]] = [
        (layer, pos)
        for pos in PRIORITY_ORDER
        for layer in range(config.n_layers)
    ]
    resident = set()
    used = 0
    for key in order:
        nbytes = sizes[key]
        if used + nbytes <= budget:
            resident.add(key)
            used += nbytes
    return NpuResidencyPlan(
        resident=frozenset(resident),
        streamed=frozenset(k for k in sizes if k not in resident),
        resident_bytes=used,
        total_bytes=sum(sizes.values()),
        budget_bytes=budget,
    )
