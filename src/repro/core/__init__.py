"""The llm.npu engine: chunked prefill, shadow outlier execution,
hot-channel caching, and out-of-order subgraph scheduling."""

from repro.core.decode import DecodeOptions, decode_latency_s, decode_token_s
from repro.core.dependency import (
    build_task_graph,
    count_cross_chunk_edges,
    shadow_id,
    sync_id,
    task_id,
)
from repro.core.engine import (
    OUTLIER_CHANNEL_FRACTION,
    EngineConfig,
    LlmNpuEngine,
)
from repro.core.hybrid import HybridEngine
from repro.core.hot_channels import (
    HotChannelPolicy,
    cache_saving_fraction,
    shadow_weight_bytes,
    shadow_weight_bytes_per_layer,
)
from repro.core.pipeline import run_prefill
from repro.core.residency import (
    NpuResidencyPlan,
    npu_weight_bytes_by_subgraph,
    plan_npu_residency,
)
from repro.core.results import (
    InferenceReport,
    PrefillReport,
    ServiceMetrics,
    TierStats,
    summarize_service,
)
from repro.core.service import (
    BACKGROUND_TIER,
    DEFAULT_TIERS,
    FAULT_ATTEMPT_FRACTION,
    INTERACTIVE_TIER,
    ChatSession,
    LlmService,
    ServedRequest,
    ServiceRequest,
    ServiceStats,
    TierPolicy,
)
from repro.core.scheduler import (
    ChunkOrderPolicy,
    HeadOfLinePolicy,
    LatencyGreedyPolicy,
    NormalizedOooPolicy,
    OutOfOrderPolicy,
    RequestQueue,
    get_policy,
    newly_ready_npu_time,
)

__all__ = [
    "LlmNpuEngine",
    "HybridEngine",
    "EngineConfig",
    "OUTLIER_CHANNEL_FRACTION",
    "InferenceReport",
    "PrefillReport",
    "LlmService",
    "ChatSession",
    "ServedRequest",
    "ServiceRequest",
    "ServiceStats",
    "ServiceMetrics",
    "TierStats",
    "summarize_service",
    "TierPolicy",
    "INTERACTIVE_TIER",
    "BACKGROUND_TIER",
    "DEFAULT_TIERS",
    "FAULT_ATTEMPT_FRACTION",
    "RequestQueue",
    "NpuResidencyPlan",
    "plan_npu_residency",
    "npu_weight_bytes_by_subgraph",
    "run_prefill",
    "build_task_graph",
    "count_cross_chunk_edges",
    "task_id",
    "shadow_id",
    "sync_id",
    "OutOfOrderPolicy",
    "NormalizedOooPolicy",
    "ChunkOrderPolicy",
    "HeadOfLinePolicy",
    "LatencyGreedyPolicy",
    "get_policy",
    "newly_ready_npu_time",
    "DecodeOptions",
    "decode_latency_s",
    "decode_token_s",
    "HotChannelPolicy",
    "shadow_weight_bytes",
    "shadow_weight_bytes_per_layer",
    "cache_saving_fraction",
]
