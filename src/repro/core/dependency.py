"""Task-graph construction with the paper's dependency rules (§3.4).

Two dependency classes govern correctness (Fig. 13):

* **Intra-chunk** (Eq. 3): subgraph ``G[i][j]`` needs ``G[i][j-1]`` — the
  data flow within one chunk's forward pass.
* **Cross-chunk** (Eq. 2): dynamic operators (attention) additionally need
  the KV-producing subgraph of every *earlier* chunk at the same layer —
  chunk ``i``'s attention reads the keys/values written by chunks
  ``0..i-1``.

Shadow outlier execution (§3.3) adds, per unpruned NPU subgraph, a CPU
shadow MatMul that can run concurrently with it, and a synchronization
task that merges the two results before the next subgraph may start.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import DependencyError
from repro.graph.builder import ChunkPlan
from repro.graph.ops import SG_ATTN, SG_QKV, SubgraphSpec
from repro.hw.sim import Task


def task_id(chunk: int, layer: int, position: int) -> str:
    """Canonical id for a subgraph task."""
    return f"c{chunk}.l{layer}.sg{position}"


def shadow_id(chunk: int, layer: int, position: int) -> str:
    return f"c{chunk}.l{layer}.sg{position}.shadow"


def sync_id(chunk: int, layer: int, position: int) -> str:
    return f"c{chunk}.l{layer}.sg{position}.sync"


def _proc_for(subgraph: SubgraphSpec, float_proc: str) -> str:
    return "npu" if subgraph.is_npu else float_proc


def build_task_graph(
    plans: List[ChunkPlan],
    float_proc: str = "cpu",
    include_shadow: bool = True,
    shadow_proc: Optional[str] = None,
) -> List[Task]:
    """Lower chunk plans into a :class:`~repro.hw.sim.Task` list.

    ``float_proc`` is the processor name for float subgraphs and syncs
    ('cpu' or 'gpu' — the Fig. 18 choice).  ``shadow_proc`` optionally
    places the shadow MatMuls on a *third* processor (e.g. attention on
    the GPU while the CPU handles shadow compensation) — an extension
    beyond the paper's two-processor prototype; defaults to
    ``float_proc``.
    """
    if not plans:
        raise DependencyError("no chunk plans given")
    n_layers = plans[0].subgraphs[-1].layer + 1
    # Multi-turn reuse: plans may start beyond chunk 0 when earlier
    # chunks' KV is already cached from a previous turn — cross-chunk
    # dependencies only apply to chunks executed in *this* prefill.
    scheduled_chunks = {plan.chunk_index for plan in plans}
    shadow_proc = shadow_proc if shadow_proc is not None else float_proc
    tasks: List[Task] = []

    for plan in plans:
        chunk = plan.chunk_index
        prev_gate: Optional[List[str]] = None  # deps for the next subgraph
        for subgraph in plan.subgraphs:
            layer, pos = subgraph.layer, subgraph.position
            deps: List[str] = list(prev_gate) if prev_gate else []
            if pos == SG_ATTN:
                # Eq. 2: attention needs the QKV of every earlier chunk at
                # this layer (its own chunk's QKV is the intra-chunk dep).
                # Chunks cached from earlier turns have their KV already.
                deps.extend(
                    task_id(earlier, layer, SG_QKV)
                    for earlier in range(chunk)
                    if earlier in scheduled_chunks
                )
            tid = task_id(chunk, layer, pos)
            tasks.append(Task(
                task_id=tid,
                proc=_proc_for(subgraph, float_proc),
                duration_s=subgraph.latency_s,
                deps=tuple(dict.fromkeys(deps)),
                tag=f"sg{pos}" + ("" if subgraph.is_npu else ".float"),
                chunk=chunk,
                subgraph=layer * 6 + pos,
                ops=subgraph.matmul_ops,
            ))
            gate = [tid]
            shadow_spec = plan.shadows.get((layer, pos))
            if (include_shadow and subgraph.is_npu and shadow_spec is not None
                    and shadow_spec.enabled):
                sid = shadow_id(chunk, layer, pos)
                tasks.append(Task(
                    task_id=sid,
                    proc=shadow_proc,
                    duration_s=(shadow_spec.matmul_s + shadow_spec.disk_s),
                    deps=tuple(dict.fromkeys(deps)),  # same inputs as NPU half
                    tag="shadow",
                    chunk=chunk,
                    subgraph=layer * 6 + pos,
                    ops=shadow_spec.matmul_ops,
                ))
                # The merge synchronization stalls the NPU queue itself:
                # cache maintenance + driver fence + graph re-arm happen on
                # the accelerator side, so sync occupies the NPU (this is
                # the §3.3 overhead that importance pruning removes — the
                # paper measures it at 29.7% of end-to-end latency when no
                # layer is pruned).
                yid = sync_id(chunk, layer, pos)
                tasks.append(Task(
                    task_id=yid,
                    proc="npu",
                    duration_s=shadow_spec.sync_s,
                    deps=(tid, sid),
                    tag="sync",
                    chunk=chunk,
                    subgraph=layer * 6 + pos,
                ))  # sync_s is ~0 when float work shares the NPU
                gate = [yid]
            prev_gate = gate
    return tasks


def count_cross_chunk_edges(tasks: List[Task]) -> int:
    """Number of Eq. 2 (cross-chunk) dependency edges — for diagnostics."""
    by_id = {t.task_id: t for t in tasks}
    count = 0
    for t in tasks:
        for d in t.deps:
            if by_id[d].chunk != t.chunk and by_id[d].chunk >= 0:
                count += 1
    return count
