"""Decode-stage latency model.

llm.npu delegates decoding to the MLLM CPU backend (§4): token-by-token
autoregressive generation with W8A8 linears and float attention, M=1.
Decoding is memory-bound (every weight streams once per token), so the
choice of CPU vs GPU backend shifts end-to-end latency — the Fig. 18(b)
effect — without touching prefill.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EngineError
from repro.hw.latency import (
    MatMulShape,
    attention_latency,
    matmul_latency,
    norm_latency,
    per_group_matmul_latency,
    quantize_latency,
)
from repro.hw.processor import DType, ProcessorSpec
from repro.model.config import ModelConfig


@dataclass(frozen=True)
class DecodeOptions:
    """Decode backend configuration."""

    backend: str = "cpu"
    weight_dtype: DType = DType.INT8
    per_group: bool = False
    group_size: int = 32
    efficiency: float = 1.0  # engine-quality factor (baselines < 1)
    #: Fraction of the per-dispatch MatMul overhead actually paid in the
    #: autoregressive loop.  Decode engines keep a persistent threadpool /
    #: command buffer, so the cold-dispatch overhead the Table 3
    #: micro-benchmarks include is almost entirely amortized away.
    overhead_scale: float = 0.05

    def __post_init__(self) -> None:
        if self.efficiency <= 0:
            raise EngineError("efficiency must be positive")
        if not 0.0 <= self.overhead_scale <= 1.0:
            raise EngineError("overhead_scale must be in [0, 1]")


def decode_token_s(config: ModelConfig, proc: ProcessorSpec,
                   kv_len: int, options: DecodeOptions) -> float:
    """Seconds to decode one token with ``kv_len`` cached positions."""
    if kv_len < 1:
        raise EngineError(f"kv_len must be >= 1, got {kv_len}")
    h, f = config.hidden_size, config.ffn_hidden
    n_up = 2 if config.gated_ffn else 1

    profile = proc.matmul_profile(options.weight_dtype)
    amortized = profile.overhead_s * (1.0 - options.overhead_scale)

    def mm(k: int, n: int) -> float:
        shape = MatMulShape(1, k, n)
        if options.per_group:
            base = per_group_matmul_latency(proc, shape, options.group_size,
                                            options.weight_dtype)
        else:
            base = matmul_latency(proc, shape, options.weight_dtype)
        return max(base - amortized, 0.0)

    per_layer = (
        mm(h, config.q_dim) + 2 * mm(h, config.kv_dim)   # QKV
        + attention_latency(proc, 1, kv_len, config.n_heads,
                            config.dim_per_head)
        + mm(config.q_dim, h)                            # O
        + n_up * mm(h, f) + mm(f, h)                     # FFN
        + 2 * norm_latency(proc, 1, h)
        + 2 * quantize_latency(proc, 1, h)
    )
    lm_head = mm(h, config.vocab_size)
    return (config.n_layers * per_layer + lm_head) / options.efficiency


def decode_latency_s(config: ModelConfig, proc: ProcessorSpec,
                     prompt_len: int, output_tokens: int,
                     options: DecodeOptions) -> float:
    """Total decode time for ``output_tokens`` after a ``prompt_len`` prefill."""
    if output_tokens < 0:
        raise EngineError(f"negative output_tokens {output_tokens}")
    total = 0.0
    for i in range(output_tokens):
        total += decode_token_s(config, proc, prompt_len + i + 1, options)
    return total
