"""LLM-as-a-System-Service (§3.1) — a multi-tenant service scheduler.

The paper positions llm.npu as the inference engine behind an OS-level
"LLM-as-a-System-Service" [99, 102]: applications submit prompts to one
shared, already-prepared engine instead of each paying the multi-second
graph preparation themselves.  :class:`LlmService` models that layer:

* engines are prepared lazily per (model, device) and cached — the
  preparation cost (§3.2's one-time graph build + optimize) is paid once
  and amortized over all subsequent requests;
* each prepared engine owns an **independent timeline**: requests for
  one model never inflate the queueing delay reported for another;
* requests carry a **tier** (interactive vs. background); the scheduler
  dispatches by tier priority, then arrival, then id — mobile NPUs don't
  preempt (§3.4/Eq. 4), so prioritization happens at dispatch points;
* an **admission controller** rejects a request on arrival when its
  projected queueing delay exceeds the tier's SLO::

      wait(r) = max(0, engine_free - arrival(r))
                + sum(est_service(q) for queued q dispatched before r)

      reject iff wait(r) > tier(r).slo_queueing_s

* requests time out: one still queued past ``arrival + timeout_s`` is
  cancelled instead of dispatched (and a request retrying past its
  deadline gives up);
* transient engine faults (see :class:`~repro.hw.sim.FaultInjector`)
  are retried with exponential backoff up to the tier's cap; permanent
  faults fail the request immediately;
* the service keeps per-tier statistics (latency percentiles,
  rejection/retry/timeout counts, NPU utilization) — see
  :func:`~repro.core.results.summarize_service`.

Two serving paths coexist:

* :meth:`LlmService.submit` — the legacy synchronous path: the caller
  blocks for this one request, so it is dispatched immediately after
  whatever is already on the engine's timeline (no admission control,
  no timeout unless one is passed explicitly);
* :meth:`LlmService.enqueue` + :meth:`LlmService.run` — the scheduler
  path: requests accumulate with arrival timestamps, then ``run`` plays
  the whole arrival stream through the admission controller and the
  priority queue deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.engine import EngineConfig, LlmNpuEngine
from repro.core.results import (
    InferenceReport,
    ServiceMetrics,
    summarize_service,
)
from repro.core.scheduler import (
    BatchConfig,
    ChunkContinuation,
    RequestQueue,
    StepItem,
    StepRecord,
    assemble_step,
)
from repro.errors import (
    EngineError,
    PermanentEngineError,
    TransientEngineError,
)
from repro.graph.chunk import chunk_token_lengths
from repro.graph.memory_plan import kv_cache_bytes
from repro.hw.sim import FaultInjector, FaultSpec
from repro.hw.soc import SocSpec, get_device
from repro.model.config import ModelConfig, get_model_config
from repro.obs.metrics import MetricsRegistry, as_registry
from repro.obs.steplog import Decision
from repro.obs.tracer import Tracer, as_tracer
from repro.workloads.datasets import WorkloadSample

#: Fraction of a request's estimated service time a *failed* execution
#: attempt consumes before the fault surfaces (the graph dies part-way
#: through its subgraph schedule, not at submit time).
FAULT_ATTEMPT_FRACTION = 0.25


def request_track(request_id: int) -> str:
    """Trace-track (thread) name of one request's lifecycle spans."""
    return f"req {request_id:05d}"


def _prefill_chunk_costs(prefill, n_chunks: int) -> List[float]:
    """Per-chunk sim-clock costs of one estimated prefill.

    Derived from the chunk-finish times of the simulated subgraph
    schedule (chunk ``c``'s cost is the schedule time between the
    previous chunk's completion and its own, in completion order; the
    first chunk absorbs any serial graph-preparation offset), so the
    costs sum to ``prefill.latency_s`` exactly and the step loop's
    telescoped chunk spans reproduce the whole-request latency.  Falls
    back to a uniform split when the report carries no trace.
    """
    if n_chunks <= 0:
        raise EngineError(f"n_chunks must be positive, got {n_chunks}")
    latency = prefill.latency_s
    trace = prefill.trace
    if trace is not None:
        chunk_finish: Dict[int, float] = {}
        for event in trace.events:
            head = event.task_id.split(".", 1)[0]
            if not head.startswith("c"):
                continue
            try:
                chunk = int(head[1:])
            except ValueError:
                continue
            chunk_finish[chunk] = max(chunk_finish.get(chunk, 0.0),
                                      event.end_s)
        if len(chunk_finish) == n_chunks:
            costs: List[float] = []
            prev = 0.0
            for chunk in sorted(chunk_finish,
                                key=lambda c: (chunk_finish[c], c)):
                costs.append(chunk_finish[chunk] - prev)
                prev = chunk_finish[chunk]
            costs[0] += latency - prev
            return costs
    per = latency / n_chunks
    return [per] * (n_chunks - 1) + [latency - per * (n_chunks - 1)]


def _decode_token_costs(decode_latency_s: float,
                        output_tokens: int) -> List[float]:
    """Per-token decode costs (last token absorbs rounding so the list
    sums to ``decode_latency_s`` exactly)."""
    if output_tokens <= 0:
        return []
    per = decode_latency_s / output_tokens
    return ([per] * (output_tokens - 1)
            + [decode_latency_s - per * (output_tokens - 1)])


@dataclass(frozen=True)
class TierPolicy:
    """Scheduling contract of one service tier.

    ``priority`` orders dispatch (higher first).  ``slo_queueing_s`` is
    the admission bound: a request whose projected queueing delay
    exceeds it is rejected on arrival.  ``timeout_s`` bounds the whole
    wait: a request not finished retrying / not yet dispatched by
    ``arrival + timeout_s`` is cancelled.  ``max_retries`` and
    ``retry_backoff_s`` govern recovery from transient engine faults
    (exponential backoff: ``backoff * 2**attempt``).
    """

    name: str
    priority: int
    slo_queueing_s: float = math.inf
    timeout_s: float = math.inf
    max_retries: int = 2
    retry_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.slo_queueing_s < 0 or self.timeout_s < 0:
            raise EngineError("SLO and timeout must be non-negative")
        if self.max_retries < 0:
            raise EngineError("max_retries must be non-negative")
        if self.retry_backoff_s < 0:
            raise EngineError("retry_backoff_s must be non-negative")


#: Foreground tier: user is watching (UI automation, chat).
INTERACTIVE_TIER = TierPolicy(
    name="interactive", priority=10,
    slo_queueing_s=3.0, timeout_s=30.0,
    max_retries=2, retry_backoff_s=0.05,
)

#: Best-effort tier: summarization, indexing, prefetch.
BACKGROUND_TIER = TierPolicy(
    name="background", priority=0,
    slo_queueing_s=20.0, timeout_s=180.0,
    max_retries=3, retry_backoff_s=0.2,
)

DEFAULT_TIERS: Dict[str, TierPolicy] = {
    INTERACTIVE_TIER.name: INTERACTIVE_TIER,
    BACKGROUND_TIER.name: BACKGROUND_TIER,
}


@dataclass(frozen=True)
class ServiceRequest:
    """One pending request on an engine's queue."""

    request_id: int
    model: str
    prompt_tokens: int
    output_tokens: int
    cached_tokens: int
    arrival_s: float
    tier: TierPolicy
    timeout_s: float

    @property
    def priority(self) -> int:
        return self.tier.priority

    @property
    def deadline_s(self) -> float:
        return self.arrival_s + self.timeout_s


@dataclass(frozen=True)
class ServedRequest:
    """One finished (or shed) request with its service-level timings.

    ``status`` is one of ``completed`` / ``rejected`` (admission
    control) / ``timeout`` (deadline passed while queued or retrying) /
    ``cancelled`` (explicit :meth:`LlmService.cancel`) / ``failed``
    (permanent fault, or transient faults past the retry cap).  Only
    completed requests carry a report.  ``service_s`` includes the time
    consumed by failed attempts and retry backoff — the engine was held
    for that span on this request's behalf.

    ``batched`` marks records produced by the step loop;
    ``prefill_end_s`` / ``first_token_s`` are the measured stage
    boundaries (the first token is emitted when the last prefill chunk
    completes), and ``retry_held_s`` is the engine time consumed by
    failed attempts plus backoff before the successful one.  The legacy
    per-request path fills the same fields from its serial timeline, so
    TTFT/ITL read identically across both paths.
    """

    request_id: int
    model: str
    arrival_s: float
    start_s: float
    finish_s: float
    report: Optional[InferenceReport] = None
    tier: str = INTERACTIVE_TIER.name
    status: str = "completed"
    retries: int = 0
    batched: bool = False
    prefill_end_s: Optional[float] = None
    first_token_s: Optional[float] = None
    retry_held_s: float = 0.0

    @property
    def queueing_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def turnaround_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def ttft_s(self) -> Optional[float]:
        """Arrival to first token (None unless the request completed)."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def itl_s(self) -> Optional[float]:
        """Mean inter-token latency over the decode stream.

        None when the request did not complete or decoded nothing —
        such requests contribute no ITL samples.
        """
        if (self.first_token_s is None or self.report is None
                or self.report.output_tokens <= 0):
            return None
        return ((self.finish_s - self.first_token_s)
                / self.report.output_tokens)

    def key(self) -> Tuple:
        """Canonical value tuple (determinism checks compare these)."""
        return (self.request_id, self.model, self.tier, self.status,
                self.retries, self.arrival_s, self.start_s, self.finish_s,
                None if self.report is None else self.report.e2e_latency_s)


class ChatSession:
    """A multi-turn conversation served with KV-cache reuse.

    Each turn prefills only the *new* tokens (chunk-aligned, §3.2's
    static-shape constraint) against the KV established by earlier turns;
    the model's own replies also land in the cache.
    """

    def __init__(self, service: "LlmService", model):
        self.service = service
        self.model = model
        self.context_tokens = 0
        self.turns: List[ServedRequest] = []

    def submit_turn(self, new_tokens: int,
                    output_tokens: int = 0) -> ServedRequest:
        """One user turn: prefill the new tokens, decode the reply."""
        if new_tokens <= 0:
            raise EngineError("new_tokens must be positive")
        record = self.service.submit(
            self.model, new_tokens, output_tokens,
            cached_tokens=self.context_tokens,
        )
        self.context_tokens += new_tokens + output_tokens
        self.turns.append(record)
        return record

    @property
    def n_turns(self) -> int:
        return len(self.turns)


@dataclass
class ServiceStats:
    """Aggregate service metrics (legacy view; see also
    :class:`~repro.core.results.ServiceMetrics` for the per-tier one)."""

    n_requests: int
    preparation_s: float
    mean_turnaround_s: float
    p95_turnaround_s: float
    mean_queueing_s: float
    total_energy_j: float
    throughput_rps: float


class LlmService:
    """A shared on-device LLM service over prepared llm.npu engines.

    ``scheduler`` is ``'priority'`` (tier-aware dispatch) or ``'fifo'``
    (pure arrival order — the seed's single-queue behaviour, kept as the
    comparison baseline).  ``admission`` toggles the SLO-based admission
    controller on the :meth:`enqueue`/:meth:`run` path.  ``fault_spec``
    attaches one deterministic fault injector shared by every engine the
    service prepares.

    ``tracer`` enables request-scoped tracing: every request's lifecycle
    (queued → retries → prefill chunks → decode, plus admission /
    timeout / cancellation markers) lands on the tracer stamped with the
    service's sim clock — see :mod:`repro.obs` and
    :func:`repro.obs.export.service_timeline` for the merged
    hw-plus-service Perfetto export.  Tracing is pure observation: with
    or without it, the served records are bit-identical.  ``metrics``
    supplies the live :class:`~repro.obs.metrics.MetricsRegistry`
    (request outcomes, admission decisions, fault counts, latency
    histograms); a fresh registry is created when omitted.
    """

    def __init__(self, device: Union[str, SocSpec],
                 config: Optional[EngineConfig] = None,
                 scheduler: str = "priority",
                 admission: bool = True,
                 fault_spec: Optional[FaultSpec] = None,
                 tiers: Optional[Dict[str, TierPolicy]] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 batching: Optional[BatchConfig] = None):
        if scheduler not in ("priority", "fifo"):
            raise EngineError(
                f"unknown scheduler {scheduler!r}; use 'priority' or 'fifo'"
            )
        if batching is not None and not isinstance(batching, BatchConfig):
            raise EngineError("batching must be a BatchConfig or None")
        self.device = get_device(device) if isinstance(device, str) else device
        self.config = config if config is not None else EngineConfig()
        self.scheduler = scheduler
        self.admission = admission
        self.batching = batching
        self._steps: List[StepRecord] = []
        self.tiers = dict(DEFAULT_TIERS if tiers is None else tiers)
        self.tracer = as_tracer(tracer)
        self.metrics_registry = as_registry(metrics)
        self.fault_injector = (FaultInjector(fault_spec)
                               if fault_spec is not None else None)
        if self.fault_injector is not None and self.tracer.enabled:
            self.fault_injector.attach_tracer(self.tracer)
        self._engines: Dict[str, LlmNpuEngine] = {}
        self._prepared: Dict[str, float] = {}
        self._clocks: Dict[str, float] = {}
        self._requests: List[ServedRequest] = []
        self._pending: Dict[str, List[ServiceRequest]] = {}
        self._cancelled: set = set()
        self._est_cache: Dict[Tuple, InferenceReport] = {}
        self._observers: List = []
        self._step_observers: List = []
        self._next_id = 0

    # -- engine lifecycle -----------------------------------------------------

    def engine_for(self, model: Union[str, ModelConfig]) -> LlmNpuEngine:
        """The prepared engine for a model; prepares (once) on first use.

        Preparation time starts that engine's own timeline — the first
        request for a model pays the warm-up, later ones don't (§3.2's
        point), and other models' timelines are unaffected.
        """
        cfg = get_model_config(model) if isinstance(model, str) else model
        if cfg.name not in self._engines:
            engine = LlmNpuEngine(cfg, self.device, self.config,
                                  fault_injector=self.fault_injector)
            engine.builder.attach_metrics(self.metrics_registry)
            prep = engine.preparation_s()
            self._engines[cfg.name] = engine
            self._prepared[cfg.name] = prep
            self._clocks[cfg.name] = prep
            self.metrics_registry.counter(
                "service_engines_prepared_total").inc()
            self.metrics_registry.counter(
                "service_preparation_s").inc(prep)
            if self.tracer.enabled:
                self.tracer.span(
                    "prepare", proc=f"hw {cfg.name}", thread="lifecycle",
                    start_s=0.0, end_s=prep, cat="lifecycle",
                    model=cfg.name,
                )
        return self._engines[cfg.name]

    @property
    def loaded_models(self) -> List[str]:
        return sorted(self._engines)

    def preparation_s(self, model: Optional[str] = None) -> float:
        """Preparation time paid so far (for one model or total)."""
        if model is not None:
            try:
                return self._prepared[model]
            except KeyError:
                raise EngineError(f"model {model!r} not prepared") from None
        return sum(self._prepared.values())

    def engine_clock_s(self, model: str) -> float:
        """Current time on one engine's independent timeline."""
        try:
            return self._clocks[model]
        except KeyError:
            raise EngineError(f"model {model!r} not prepared") from None

    def _tier(self, tier: Union[str, TierPolicy]) -> TierPolicy:
        if isinstance(tier, TierPolicy):
            return tier
        try:
            return self.tiers[tier]
        except KeyError:
            raise EngineError(
                f"unknown tier {tier!r}; available: {sorted(self.tiers)}"
            ) from None

    # -- cost estimation ------------------------------------------------------

    def _estimate(self, engine: LlmNpuEngine,
                  req: ServiceRequest) -> InferenceReport:
        """Deterministic service-time estimate (== the actual report).

        The simulator is deterministic, so the admission controller's
        estimate and the eventual execution are the same computation;
        memoization makes re-estimating queued requests free.  Fault
        draws are suspended — estimation must not perturb the injected
        fault stream.
        """
        key = (req.model, req.prompt_tokens, req.output_tokens,
               req.cached_tokens)
        if key not in self._est_cache:
            if self.fault_injector is not None:
                with self.fault_injector.suspended():
                    report = engine.infer(req.prompt_tokens,
                                          req.output_tokens,
                                          cached_tokens=req.cached_tokens)
            else:
                report = engine.infer(req.prompt_tokens, req.output_tokens,
                                      cached_tokens=req.cached_tokens)
            self._est_cache[key] = report
        return self._est_cache[key]

    # -- execution ------------------------------------------------------------

    def _execute(self, engine: LlmNpuEngine, req: ServiceRequest,
                 dispatch_s: float) -> ServedRequest:
        """Run one dispatched request, retrying transient faults.

        The engine is held from ``dispatch_s`` until the returned
        record's ``finish_s`` (mobile NPUs don't preempt): failed
        attempts consume :data:`FAULT_ATTEMPT_FRACTION` of the service
        estimate, then the tier's exponential backoff elapses before the
        next attempt.  A request that would retry past its deadline
        gives up with status ``timeout``.

        Tracing (when enabled) is strictly observational: spans are
        emitted alongside the clock arithmetic, never folded into it,
        so the returned record is identical with tracing on or off.
        """
        est = self._estimate(engine, req)
        tr = self.tracer
        track = request_track(req.request_id)
        if tr.enabled and dispatch_s > req.arrival_s:
            tr.span("queued", proc="service", thread=track,
                    start_s=req.arrival_s, end_s=dispatch_s, cat="queue",
                    tier=req.tier.name)
        now = dispatch_s
        attempts = 0
        prefill_end = first_token = None
        while True:
            attempts += 1
            kind = None
            try:
                engine.check_fault(now_s=now)
            except TransientEngineError:
                kind = "transient"
            except PermanentEngineError:
                kind = "permanent"
            if kind is None:
                finish, status, report = now + est.e2e_latency_s, \
                    "completed", est
                prefill_end = now + est.prefill.latency_s
                first_token = prefill_end
                if tr.enabled:
                    self._trace_success(track, req, est, now)
                break
            self.metrics_registry.counter("service_faults_total",
                                          kind=kind).inc()
            if tr.enabled:
                tr.span(f"attempt {attempts}", proc="service",
                        thread=track, start_s=now,
                        end_s=now + FAULT_ATTEMPT_FRACTION
                        * est.e2e_latency_s,
                        cat="retry", fault=kind, attempt=attempts)
            now += FAULT_ATTEMPT_FRACTION * est.e2e_latency_s
            if kind == "permanent" or attempts > req.tier.max_retries:
                finish, status, report = now, "failed", None
                break
            if tr.enabled:
                tr.span("backoff", proc="service", thread=track,
                        start_s=now,
                        end_s=now + req.tier.retry_backoff_s
                        * (2 ** (attempts - 1)),
                        cat="retry", attempt=attempts)
            now += req.tier.retry_backoff_s * (2 ** (attempts - 1))
            if now > req.deadline_s:
                finish, status, report = now, "timeout", None
                break
        return ServedRequest(
            request_id=req.request_id,
            model=req.model,
            arrival_s=req.arrival_s,
            start_s=dispatch_s,
            finish_s=finish,
            report=report,
            tier=req.tier.name,
            status=status,
            retries=attempts - 1,
            prefill_end_s=prefill_end,
            first_token_s=first_token,
            retry_held_s=(now - dispatch_s if status == "completed"
                          else finish - dispatch_s),
        )

    def _trace_success(self, track: str, req: ServiceRequest,
                       est: InferenceReport, start_s: float) -> None:
        """Spans of one successful execution attempt.

        The request track gets the serial ``prefill`` / ``decode``
        stages; a sibling ``<track> chunks`` track carries the
        chunk-completion partition of the prefill (chunk ``c``'s span
        ends when the simulated schedule finishes its last subgraph), so
        every track stays serially consistent on the merged timeline.
        """
        prefill = est.prefill
        prefill_end = start_s + prefill.latency_s
        self.tracer.span(
            "prefill", proc="service", thread=track, start_s=start_s,
            end_s=prefill_end, cat="prefill", tier=req.tier.name,
            prompt_tokens=req.prompt_tokens,
            cached_tokens=req.cached_tokens, n_chunks=prefill.n_chunks,
        )
        if prefill.trace is not None:
            chunk_track = f"{track} chunks"
            # latency may exceed the schedule's makespan by serial
            # graph-preparation time (the naive-engine path)
            offset = prefill_end - prefill.trace.makespan_s
            if offset > start_s:
                self.tracer.span(
                    "graph prepare", proc="service", thread=chunk_track,
                    start_s=start_s, end_s=offset, cat="prefill",
                )
            chunk_finish: Dict[int, float] = {}
            for event in prefill.trace.events:
                head = event.task_id.split(".", 1)[0]
                if not head.startswith("c"):
                    continue
                try:
                    chunk = int(head[1:])
                except ValueError:
                    continue
                chunk_finish[chunk] = max(chunk_finish.get(chunk, 0.0),
                                          event.end_s)
            prev = max(start_s, offset)
            for chunk in sorted(chunk_finish,
                                key=lambda c: (chunk_finish[c], c)):
                end = offset + chunk_finish[chunk]
                self.tracer.span(
                    f"chunk {chunk}", proc="service", thread=chunk_track,
                    start_s=prev, end_s=end, cat="prefill", chunk=chunk,
                )
                prev = end
        if est.decode_latency_s > 0:
            self.tracer.span(
                "decode", proc="service", thread=track,
                start_s=prefill_end,
                end_s=prefill_end + est.decode_latency_s, cat="decode",
                tier=req.tier.name, output_tokens=req.output_tokens,
            )

    def add_observer(self, observer) -> None:
        """Register a streaming consumer of finished request records.

        ``observer`` is called as ``observer(record)`` with every
        :class:`ServedRequest` the service finalizes (all terminal
        statuses, both serving paths), synchronously at the point the
        record is folded into the live metrics.  Observation is strictly
        read-only: observers receive the frozen record after all clock
        arithmetic is done, so attaching any number of them leaves the
        served results byte-identical (the same no-op guarantee tracing
        makes).  This is the hook the SLO monitors
        (:class:`~repro.obs.monitor.SloMonitor`) ride on.
        """
        if not callable(observer):
            raise EngineError("observer must be callable")
        self._observers.append(observer)

    def add_step_observer(self, observer) -> None:
        """Register a consumer of the scheduler's step telemetry.

        ``observer`` is duck-typed: its optional ``on_step(record)``
        receives every executed
        :class:`~repro.core.scheduler.StepRecord` and its optional
        ``on_decision(decision)`` every typed
        :class:`~repro.obs.steplog.Decision` (admissions, dispatches,
        per-step chunk/decode scheduling and skips, terminal statuses —
        see :data:`~repro.obs.steplog.DECISION_ACTIONS`).  Like
        :meth:`add_observer` this is strictly read-only, and with no
        step observers attached the serving paths do no telemetry work
        at all — golden artifacts stay byte-identical either way.
        """
        if not (callable(getattr(observer, "on_step", None))
                or callable(getattr(observer, "on_decision", None))):
            raise EngineError(
                "step observer must define on_step() or on_decision()")
        self._step_observers.append(observer)

    def _emit_decision(self, t_s: float, request_id: int, tier: str,
                       action: str, step: Optional[int] = None,
                       quantity: Optional[str] = None,
                       value: Optional[float] = None,
                       limit: Optional[float] = None) -> None:
        """Fan one scheduler decision out to the step observers."""
        decision = Decision(t_s=t_s, request_id=request_id, tier=tier,
                            action=action, step=step, quantity=quantity,
                            value=value, limit=limit)
        for observer in self._step_observers:
            fn = getattr(observer, "on_decision", None)
            if callable(fn):
                fn(decision)

    def _emit_step(self, record: StepRecord) -> None:
        """Fan one executed step out to the step observers."""
        for observer in self._step_observers:
            fn = getattr(observer, "on_step", None)
            if callable(fn):
                fn(record)

    def _observe(self, record: ServedRequest) -> None:
        """Fold one finished record into the live metrics registry."""
        reg = self.metrics_registry
        reg.counter("service_requests_total", tier=record.tier,
                    status=record.status).inc()
        if record.retries:
            reg.counter("service_retries_total",
                        tier=record.tier).inc(record.retries)
        if record.status == "completed":
            reg.histogram("service_turnaround_s",
                          tier=record.tier).observe(record.turnaround_s)
            reg.histogram("service_queueing_s",
                          tier=record.tier).observe(record.queueing_s)
            if record.ttft_s is not None:
                reg.histogram("service_ttft_s",
                              tier=record.tier).observe(record.ttft_s)
            if record.itl_s is not None:
                reg.histogram("service_itl_s",
                              tier=record.tier).observe(record.itl_s)
        if self._step_observers:
            self._emit_decision(
                record.finish_s, record.request_id, record.tier,
                record.status, quantity="turnaround_s",
                value=record.turnaround_s,
            )
        for observer in self._observers:
            observer(record)

    # -- synchronous serving (legacy path) ------------------------------------

    def submit(self, model: Union[str, ModelConfig], prompt_tokens: int,
               output_tokens: int = 0,
               arrival_s: Optional[float] = None,
               cached_tokens: int = 0,
               tier: Union[str, TierPolicy] = INTERACTIVE_TIER.name,
               timeout_s: Optional[float] = None) -> ServedRequest:
        """Serve one request immediately; returns its service record.

        ``arrival_s`` defaults to "now" (the engine's current clock); an
        arrival in the past queues behind whatever is running on *that
        engine's* timeline.  The synchronous path bypasses admission
        control and, unless ``timeout_s`` is given, never times out —
        the caller is blocking on this request.
        """
        engine = self.engine_for(model)
        name = engine.model.name
        clock = self._clocks[name]
        arrival = clock if arrival_s is None else float(arrival_s)
        req = ServiceRequest(
            request_id=self._next_id,
            model=name,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            cached_tokens=cached_tokens,
            arrival_s=arrival,
            tier=self._tier(tier),
            timeout_s=math.inf if timeout_s is None else float(timeout_s),
        )
        self._next_id += 1
        record = self._execute(engine, req, max(clock, arrival))
        self._clocks[name] = max(clock, record.finish_s)
        self._requests.append(record)
        self._observe(record)
        return record

    def submit_workload(self, model: Union[str, ModelConfig],
                        samples: List[WorkloadSample],
                        inter_arrival_s: float = 0.0) -> List[ServedRequest]:
        """Serve a batch of workload samples with fixed inter-arrival gaps."""
        if inter_arrival_s < 0:
            raise EngineError("inter_arrival_s must be non-negative")
        # Prepare the engine before the arrival clock starts: workload
        # requests queue behind each other, not behind the one-time
        # preparation (which the service pays at model-load time).
        engine = self.engine_for(model)
        base = self._clocks[engine.model.name]
        out = []
        for i, sample in enumerate(samples):
            out.append(self.submit(
                model, sample.prompt_tokens, sample.output_tokens,
                arrival_s=base + i * inter_arrival_s,
            ))
        return out

    def open_chat(self, model: Union[str, ModelConfig]) -> "ChatSession":
        """Start a multi-turn conversation with KV-cache reuse."""
        return ChatSession(self, model)

    # -- scheduled serving (enqueue/run path) ---------------------------------

    def enqueue(self, model: Union[str, ModelConfig], prompt_tokens: int,
                output_tokens: int = 0,
                arrival_s: float = 0.0,
                cached_tokens: int = 0,
                tier: Union[str, TierPolicy] = INTERACTIVE_TIER.name,
                timeout_s: Optional[float] = None) -> int:
        """Queue one request for the next :meth:`run`; returns its id.

        ``arrival_s`` is measured from the engine's *service-ready
        epoch* (the instant its one-time preparation finished), so
        arrival streams describe steady-state load and never queue
        behind the warm-up.  ``timeout_s`` defaults to the tier's
        policy.
        """
        if arrival_s < 0:
            raise EngineError("arrival_s must be non-negative")
        engine = self.engine_for(model)
        policy = self._tier(tier)
        req = ServiceRequest(
            request_id=self._next_id,
            model=engine.model.name,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            cached_tokens=cached_tokens,
            arrival_s=self._prepared[engine.model.name] + float(arrival_s),
            tier=policy,
            timeout_s=(policy.timeout_s if timeout_s is None
                       else float(timeout_s)),
        )
        self._next_id += 1
        self._pending.setdefault(req.model, []).append(req)
        return req.request_id

    def cancel(self, request_id: int) -> None:
        """Cancel a still-pending request (a no-op once it has run)."""
        self._cancelled.add(request_id)

    def _shed(self, req: ServiceRequest, at_s: float,
              status: str) -> ServedRequest:
        """A record for a request that never ran (no engine time used)."""
        if self.tracer.enabled:
            track = request_track(req.request_id)
            if at_s > req.arrival_s:
                self.tracer.span("queued", proc="service", thread=track,
                                 start_s=req.arrival_s, end_s=at_s,
                                 cat="queue", tier=req.tier.name)
            self.tracer.instant(status, proc="service", thread=track,
                                ts_s=at_s, cat="lifecycle",
                                tier=req.tier.name)
        return ServedRequest(
            request_id=req.request_id, model=req.model,
            arrival_s=req.arrival_s, start_s=at_s, finish_s=at_s,
            report=None, tier=req.tier.name, status=status, retries=0,
        )

    def _admit(self, queue: RequestQueue, req: ServiceRequest,
               free_s: float, records: List[ServedRequest],
               prefill_only: bool = False) -> None:
        """Process one arrival: cancel, reject, or push onto the queue.

        The projected queueing delay is the engine's remaining busy time
        plus the estimated service of every queued request that would be
        dispatched before this one (higher key in the queue's order).
        With ``prefill_only`` (the step loop's projection) the
        queued-ahead cost counts only estimated prefill time: under
        iteration-level scheduling a request's first token waits for the
        prefill work ahead of it, not for other requests' decode tails —
        those interleave.
        """
        if req.request_id in self._cancelled:
            records.append(self._shed(req, req.arrival_s, "cancelled"))
            return
        wait = None
        if self.admission:
            engine = self._engines[req.model]
            wait = max(0.0, free_s - req.arrival_s)
            for queued in queue:
                if queue.precedes(queued, req):
                    est = self._estimate(engine, queued)
                    wait += (est.prefill.latency_s if prefill_only
                             else est.e2e_latency_s)
            if wait > req.tier.slo_queueing_s:
                self.metrics_registry.counter(
                    "service_admission_total", decision="rejected").inc()
                if self.tracer.enabled:
                    self.tracer.instant(
                        "admission.reject", proc="service",
                        thread=request_track(req.request_id),
                        ts_s=req.arrival_s, cat="admission",
                        tier=req.tier.name, projected_wait_s=wait,
                        slo_s=req.tier.slo_queueing_s,
                    )
                if self._step_observers:
                    self._emit_decision(
                        req.arrival_s, req.request_id, req.tier.name,
                        "admission-rejected",
                        quantity="projected_wait_s", value=wait,
                        limit=req.tier.slo_queueing_s,
                    )
                records.append(self._shed(req, req.arrival_s, "rejected"))
                return
            self.metrics_registry.counter(
                "service_admission_total", decision="admitted").inc()
            if self.tracer.enabled:
                self.tracer.instant(
                    "admission.admit", proc="service",
                    thread=request_track(req.request_id),
                    ts_s=req.arrival_s, cat="admission",
                    tier=req.tier.name, projected_wait_s=wait,
                )
        if self._step_observers:
            self._emit_decision(
                req.arrival_s, req.request_id, req.tier.name, "admitted",
                quantity="projected_wait_s", value=wait,
                limit=(req.tier.slo_queueing_s if self.admission
                       else None),
            )
        queue.push(req, now_s=req.arrival_s)

    def run(self) -> List[ServedRequest]:
        """Play every pending arrival stream to completion.

        Engines are processed in sorted model order, each on its own
        timeline; within an engine the event loop alternates between
        admitting the arrivals that occurred up to the engine's next
        free instant and dispatching the best queued request.  The
        result (and every admission decision) is a pure function of the
        enqueued requests, the scheduler mode, and the fault spec.

        With a :class:`~repro.core.scheduler.BatchConfig` attached the
        loop runs at iteration granularity instead
        (:meth:`_run_step_loop`) — unless the config is the
        ``sequential`` degenerate case (unbounded batch, concurrency 1),
        which is byte-identical to the per-request loop and served by
        it.
        """
        if self.batching is not None and not self.batching.sequential:
            return self._run_step_loop()
        new_records: List[ServedRequest] = []
        for model_name in sorted(self._pending):
            reqs = sorted(self._pending[model_name],
                          key=lambda r: (r.arrival_s, r.request_id))
            engine = self._engines[model_name]
            free_s = self._clocks[model_name]
            queue = RequestQueue(self.scheduler, tracer=self.tracer)
            idx = 0
            while idx < len(reqs) or queue:
                while idx < len(reqs) and reqs[idx].arrival_s <= free_s:
                    self._admit(queue, reqs[idx], free_s, new_records)
                    idx += 1
                if not queue:
                    if idx < len(reqs):
                        # engine idles until the next arrival
                        free_s = max(free_s, reqs[idx].arrival_s)
                        continue
                    break
                req = queue.pop(now_s=free_s)
                if req.request_id in self._cancelled:
                    new_records.append(self._shed(req, req.arrival_s,
                                                  "cancelled"))
                    continue
                if free_s > req.deadline_s:
                    # waited past its deadline: cancelled, engine unused
                    new_records.append(self._shed(req, req.deadline_s,
                                                  "timeout"))
                    continue
                if self._step_observers:
                    self._emit_decision(
                        free_s, req.request_id, req.tier.name,
                        "dispatched", quantity="queueing_s",
                        value=free_s - req.arrival_s,
                    )
                record = self._execute(engine, req, free_s)
                free_s = max(free_s, record.finish_s)
                new_records.append(record)
            self._clocks[model_name] = free_s
        self._pending.clear()
        new_records.sort(key=lambda r: r.request_id)
        self._requests.extend(new_records)
        for record in new_records:
            self._observe(record)
        return new_records

    # -- iteration-level serving (step loop) ----------------------------------

    @property
    def steps(self) -> List[StepRecord]:
        """Audit log of every step the batched loop has executed."""
        return list(self._steps)

    def _start_batched(
            self, engine: LlmNpuEngine, req: ServiceRequest,
            dispatch_s: float,
    ) -> Tuple[Optional[ChunkContinuation], Optional[ServedRequest], float]:
        """Dispatch one request into the batch: fault prelude + state.

        Mirrors :meth:`_execute`'s retry arithmetic exactly (same fault
        draws, same attempt/backoff costs) but stops at the point the
        successful attempt would begin, returning the request's
        :class:`ChunkContinuation` instead of running it to completion.
        Returns ``(state, record, now)``: ``record`` is set (and
        ``state`` is None) when the prelude itself failed or timed out —
        the engine was held until ``now`` either way.
        """
        est = self._estimate(engine, req)
        tr = self.tracer
        track = request_track(req.request_id)
        if tr.enabled and dispatch_s > req.arrival_s:
            tr.span("queued", proc="service", thread=track,
                    start_s=req.arrival_s, end_s=dispatch_s, cat="queue",
                    tier=req.tier.name)
        now = dispatch_s
        attempts = 0
        status = None
        while True:
            attempts += 1
            kind = None
            try:
                engine.check_fault(now_s=now)
            except TransientEngineError:
                kind = "transient"
            except PermanentEngineError:
                kind = "permanent"
            if kind is None:
                break
            self.metrics_registry.counter("service_faults_total",
                                          kind=kind).inc()
            if tr.enabled:
                tr.span(f"attempt {attempts}", proc="service",
                        thread=track, start_s=now,
                        end_s=now + FAULT_ATTEMPT_FRACTION
                        * est.e2e_latency_s,
                        cat="retry", fault=kind, attempt=attempts)
            now += FAULT_ATTEMPT_FRACTION * est.e2e_latency_s
            if kind == "permanent" or attempts > req.tier.max_retries:
                status = "failed"
                break
            if tr.enabled:
                tr.span("backoff", proc="service", thread=track,
                        start_s=now,
                        end_s=now + req.tier.retry_backoff_s
                        * (2 ** (attempts - 1)),
                        cat="retry", attempt=attempts)
            now += req.tier.retry_backoff_s * (2 ** (attempts - 1))
            if now > req.deadline_s:
                status = "timeout"
                break
        if status is not None:
            record = ServedRequest(
                request_id=req.request_id, model=req.model,
                arrival_s=req.arrival_s, start_s=dispatch_s,
                finish_s=now, report=None, tier=req.tier.name,
                status=status, retries=attempts - 1, batched=True,
                retry_held_s=now - dispatch_s,
            )
            return None, record, now

        cfg = engine.config
        if cfg.chunking:
            chunk_lens = chunk_token_lengths(req.prompt_tokens,
                                             cfg.chunk_len,
                                             req.cached_tokens)
            chunk_offset = req.cached_tokens // cfg.chunk_len
        else:
            chunk_lens = [req.prompt_tokens]
            chunk_offset = 0
        if len(chunk_lens) != est.prefill.n_chunks:
            # engine chunked differently (defensive; should not happen
            # with the chunk-sharing engine) — split uniformly so token
            # conservation still holds
            n = max(1, est.prefill.n_chunks)
            base = req.prompt_tokens // n
            chunk_lens = [base] * (n - 1) + [req.prompt_tokens
                                             - base * (n - 1)]
            chunk_offset = 0
        budget = self.batching.max_batch_tokens
        if budget is not None and max(chunk_lens) > budget:
            raise EngineError(
                f"max_batch_tokens={budget} is smaller than a prefill "
                f"chunk of {max(chunk_lens)} tokens "
                f"(chunk_len={cfg.chunk_len}); the step loop cannot "
                f"make progress"
            )
        state = ChunkContinuation(
            request_id=req.request_id,
            priority=req.priority,
            arrival_s=req.arrival_s,
            dispatch_s=dispatch_s,
            tier_name=req.tier.name,
            chunk_lens=chunk_lens,
            chunk_costs=_prefill_chunk_costs(est.prefill, len(chunk_lens)),
            chunk_offset=chunk_offset,
            token_costs=_decode_token_costs(est.decode_latency_s,
                                            req.output_tokens),
            kv_reserved_bytes=kv_cache_bytes(
                engine.model,
                req.cached_tokens + req.prompt_tokens + req.output_tokens),
            retries=attempts - 1,
            retry_held_s=now - dispatch_s,
        )
        return state, None, now

    def _finalize_batched(self, engine: LlmNpuEngine, model_name: str,
                          state: ChunkContinuation, req: ServiceRequest,
                          finish_s: float) -> ServedRequest:
        """The completed record of one batched request."""
        est = self._estimate(engine, req)
        return ServedRequest(
            request_id=req.request_id, model=model_name,
            arrival_s=req.arrival_s, start_s=state.dispatch_s,
            finish_s=finish_s, report=est, tier=state.tier_name,
            status="completed", retries=state.retries, batched=True,
            prefill_end_s=state.prefill_end_s,
            first_token_s=state.first_token_s,
            retry_held_s=state.retry_held_s,
        )

    def _run_step_loop(self) -> List[ServedRequest]:
        """Iteration-level event loop: continuous batching with chunked
        prefill.

        Per engine timeline, each iteration of the outer loop is one
        sim-clock *step*: admit the arrivals up to ``now``, start queued
        requests into the batch (bounded by ``max_concurrency`` and the
        KV budget, head-of-line), then execute the step batch
        :func:`~repro.core.scheduler.assemble_step` plans — prefill
        chunks of starting requests interleaved with one decode token
        per in-flight decoder, under ``max_batch_tokens``.  The engine
        is serial (mobile NPUs don't co-run graphs), so a step's items
        execute back-to-back; batching wins by *reordering* work across
        requests, not by overlapping it.

        Chunk-continuation state (cursor, decode progress, KV
        reservation) lives in per-request
        :class:`~repro.core.scheduler.ChunkContinuation` objects carried
        across steps; every executed step is appended to :attr:`steps`.
        """
        bcfg = self.batching
        tr = self.tracer
        new_records: List[ServedRequest] = []
        for model_name in sorted(self._pending):
            reqs = sorted(self._pending[model_name],
                          key=lambda r: (r.arrival_s, r.request_id))
            engine = self._engines[model_name]
            now = self._clocks[model_name]
            queue = RequestQueue(self.scheduler, tracer=self.tracer)
            inflight: List[ChunkContinuation] = []
            open_reqs: Dict[int, ServiceRequest] = {}
            idx = 0
            rotation = 0
            while idx < len(reqs) or queue or inflight:
                # Admission keeps the serial-equivalent projection:
                # batching reorders execution on a time-shared engine but
                # does not create capacity, so an arrival's wait is still
                # bounded below by the remaining work (prefill + decode)
                # of everything that precedes it in queue-key order.
                # Priority-awareness is the batched refinement — work the
                # arrival would preempt at the next chunk boundary does
                # not count against it, which is what lets interactive
                # requests through during a background burst.
                while idx < len(reqs) and reqs[idx].arrival_s <= now:
                    arrival = reqs[idx]
                    backlog_s = now + sum(
                        s.remaining_cost_s for s in inflight
                        if queue.key(s) < queue.key(arrival))
                    self._admit(queue, arrival, backlog_s, new_records)
                    idx += 1
                if not inflight and not queue:
                    if idx < len(reqs):
                        # engine idles until the next arrival
                        now = max(now, reqs[idx].arrival_s)
                        continue
                    break
                # start queued requests into the batch
                kv_blocked_id: Optional[int] = None
                while queue and (bcfg.max_concurrency is None
                                 or len(inflight) < bcfg.max_concurrency):
                    head = queue.peek()
                    if (bcfg.kv_budget_bytes is not None and inflight
                            and head.request_id not in self._cancelled):
                        projected = kv_cache_bytes(
                            engine.model,
                            head.cached_tokens + head.prompt_tokens
                            + head.output_tokens)
                        reserved = sum(s.kv_reserved_bytes
                                       for s in inflight)
                        if reserved + projected > bcfg.kv_budget_bytes:
                            kv_blocked_id = head.request_id
                            if self._step_observers:
                                self._emit_decision(
                                    now, head.request_id, head.tier.name,
                                    "kv-deferred",
                                    step=len(self._steps),
                                    quantity="kv_projected_bytes",
                                    value=float(reserved + projected),
                                    limit=float(bcfg.kv_budget_bytes),
                                )
                            break  # head-of-line: wait for KV to free
                    req = queue.pop(now_s=now)
                    if req.request_id in self._cancelled:
                        new_records.append(
                            self._shed(req, req.arrival_s, "cancelled"))
                        continue
                    if now > req.deadline_s:
                        new_records.append(
                            self._shed(req, req.deadline_s, "timeout"))
                        continue
                    state, dead, now = self._start_batched(engine, req,
                                                           now)
                    if dead is not None:
                        new_records.append(dead)
                        continue
                    inflight.append(state)
                    open_reqs[req.request_id] = req
                    if self._step_observers:
                        self._emit_decision(
                            state.dispatch_s, req.request_id,
                            req.tier.name, "started",
                            step=len(self._steps),
                            quantity="kv_reserved_bytes",
                            value=float(state.kv_reserved_bytes),
                            limit=(None if bcfg.kv_budget_bytes is None
                                   else float(bcfg.kv_budget_bytes)),
                        )
                concurrency_full = (
                    bool(queue) and kv_blocked_id is None
                    and bcfg.max_concurrency is not None
                    and len(inflight) >= bcfg.max_concurrency)
                if concurrency_full and self._step_observers:
                    head = queue.peek()
                    self._emit_decision(
                        now, head.request_id, head.tier.name,
                        "concurrency-deferred", step=len(self._steps),
                        quantity="n_inflight",
                        value=float(len(inflight)),
                        limit=float(bcfg.max_concurrency),
                    )
                if not inflight:
                    continue
                items = assemble_step(inflight, bcfg.max_batch_tokens,
                                      bcfg.prefill_priority,
                                      rotation=rotation)
                if not items:
                    raise EngineError(
                        "step loop stalled: in-flight requests but an "
                        "empty step batch"
                    )
                step_index = len(self._steps)
                step_start = now
                n_inflight = len(inflight)
                kv_reserved = sum(s.kv_reserved_bytes for s in inflight)
                by_id = {s.request_id: s for s in inflight}
                queued_ids = tuple(e.request_id for e in queue)
                tier_depths: Dict[str, int] = {}
                for entry in queue:
                    tier_depths[entry.tier.name] = (
                        tier_depths.get(entry.tier.name, 0) + 1)
                if self._step_observers:
                    scheduled = {(it.request_id, it.kind)
                                 for it in items}
                    for it in items:
                        state = by_id[it.request_id]
                        if it.kind == "prefill":
                            self._emit_decision(
                                step_start, it.request_id,
                                state.tier_name, "chunk-scheduled",
                                step=step_index, quantity="tokens",
                                value=float(it.tokens),
                                limit=(None
                                       if bcfg.max_batch_tokens is None
                                       else float(
                                           bcfg.max_batch_tokens)),
                            )
                        else:
                            self._emit_decision(
                                step_start, it.request_id,
                                state.tier_name, "decode-scheduled",
                                step=step_index, quantity="token_index",
                                value=float(it.index),
                            )
                    for state in inflight:
                        rid = state.request_id
                        if (not state.prefill_done
                                and (rid, "prefill") not in scheduled):
                            self._emit_decision(
                                step_start, rid, state.tier_name,
                                "budget-exhausted", step=step_index,
                                quantity="next_chunk_tokens",
                                value=float(
                                    state.chunk_lens[state.cursor]),
                                limit=(None
                                       if bcfg.max_batch_tokens is None
                                       else float(
                                           bcfg.max_batch_tokens)),
                            )
                        elif (state.prefill_done and not state.done
                                and (rid, "decode") not in scheduled):
                            self._emit_decision(
                                step_start, rid, state.tier_name,
                                "decode-rotated-out", step=step_index,
                                quantity="rotation",
                                value=float(rotation),
                                limit=(None
                                       if bcfg.max_batch_tokens is None
                                       else float(
                                           bcfg.max_batch_tokens)),
                            )
                rotation += 1
                executed: List[StepItem] = []
                finished_at: Dict[int, float] = {}
                for item in items:
                    state = by_id[item.request_id]
                    start = now
                    now += item.cost_s
                    if item.kind == "prefill":
                        state.cursor += 1
                        if tr.enabled:
                            chunk = state.chunk_offset + item.index
                            tr.span(
                                f"chunk {chunk}", proc="service",
                                thread=request_track(item.request_id),
                                start_s=start, end_s=now, cat="prefill",
                                chunk=chunk, tokens=item.tokens,
                                step=step_index,
                            )
                        if state.prefill_done:
                            state.prefill_end_s = now
                            state.first_token_s = now
                    else:
                        state.decoded += 1
                        if tr.enabled:
                            tr.span(
                                f"token {item.index}", proc="service",
                                thread=request_track(item.request_id),
                                start_s=start, end_s=now, cat="decode",
                                step=step_index,
                            )
                    executed.append(replace(item, start_s=start,
                                            end_s=now))
                    if state.done:
                        finished_at[state.request_id] = now
                self._steps.append(StepRecord(
                    index=step_index, start_s=step_start, end_s=now,
                    items=tuple(executed), n_inflight=n_inflight,
                    kv_reserved_bytes=kv_reserved,
                    queued_ids=queued_ids,
                    queue_depths=tuple(sorted(tier_depths.items())),
                    kv_blocked_id=kv_blocked_id,
                    concurrency_full=concurrency_full,
                    budget_tokens=bcfg.max_batch_tokens,
                    kv_budget_bytes=bcfg.kv_budget_bytes,
                ))
                if self._step_observers:
                    self._emit_step(self._steps[-1])
                if finished_at:
                    inflight = [s for s in inflight
                                if s.request_id not in finished_at]
                    for rid in sorted(finished_at):
                        state = by_id[rid]
                        new_records.append(self._finalize_batched(
                            engine, model_name, state,
                            open_reqs.pop(rid), finished_at[rid]))
            self._clocks[model_name] = now
        self._pending.clear()
        new_records.sort(key=lambda r: r.request_id)
        self._requests.extend(new_records)
        for record in new_records:
            self._observe(record)
        return new_records

    # -- reporting ----------------------------------------------------------------

    @property
    def requests(self) -> List[ServedRequest]:
        return list(self._requests)

    def stats(self) -> ServiceStats:
        """Legacy aggregate view over *completed* requests."""
        if not self._requests:
            raise EngineError("no requests served yet")
        done = [r for r in self._requests if r.status == "completed"]
        if not done:
            raise EngineError("no requests completed yet")
        turnarounds = np.array([r.turnaround_s for r in done])
        queueing = np.array([r.queueing_s for r in done])
        span = (max(r.finish_s for r in self._requests)
                - min(r.arrival_s for r in self._requests))
        return ServiceStats(
            n_requests=len(done),
            preparation_s=self.preparation_s(),
            mean_turnaround_s=float(turnarounds.mean()),
            p95_turnaround_s=float(np.percentile(turnarounds, 95)),
            mean_queueing_s=float(queueing.mean()),
            total_energy_j=sum(r.report.energy_j for r in done),
            throughput_rps=(len(done) / span if span > 0
                            else float("inf")),
        )

    def metrics(self) -> ServiceMetrics:
        """Per-tier service metrics over everything served so far."""
        return summarize_service(self._requests)
