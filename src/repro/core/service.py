"""LLM-as-a-System-Service (§3.1).

The paper positions llm.npu as the inference engine behind an OS-level
"LLM-as-a-System-Service" [99, 102]: applications submit prompts to one
shared, already-prepared engine instead of each paying the multi-second
graph preparation themselves.  :class:`LlmService` models that layer:

* engines are prepared lazily per (model, device) and cached — the
  preparation cost (§3.2's one-time graph build + optimize) is paid once
  and amortized over all subsequent requests;
* requests are served FIFO (mobile NPUs don't preempt, §3.4/Eq. 4) with
  queueing delay accounted;
* the service keeps aggregate statistics (latency percentiles, energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.engine import EngineConfig, LlmNpuEngine
from repro.core.results import InferenceReport
from repro.errors import EngineError
from repro.hw.soc import SocSpec, get_device
from repro.model.config import ModelConfig, get_model_config
from repro.workloads.datasets import WorkloadSample


@dataclass(frozen=True)
class ServedRequest:
    """One completed request with its service-level timings."""

    request_id: int
    model: str
    arrival_s: float
    start_s: float
    finish_s: float
    report: InferenceReport

    @property
    def queueing_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def turnaround_s(self) -> float:
        return self.finish_s - self.arrival_s


class ChatSession:
    """A multi-turn conversation served with KV-cache reuse.

    Each turn prefills only the *new* tokens (chunk-aligned, §3.2's
    static-shape constraint) against the KV established by earlier turns;
    the model's own replies also land in the cache.
    """

    def __init__(self, service: "LlmService", model):
        self.service = service
        self.model = model
        self.context_tokens = 0
        self.turns: List[ServedRequest] = []

    def submit_turn(self, new_tokens: int,
                    output_tokens: int = 0) -> ServedRequest:
        """One user turn: prefill the new tokens, decode the reply."""
        if new_tokens <= 0:
            raise EngineError("new_tokens must be positive")
        record = self.service.submit(
            self.model, new_tokens, output_tokens,
            cached_tokens=self.context_tokens,
        )
        self.context_tokens += new_tokens + output_tokens
        self.turns.append(record)
        return record

    @property
    def n_turns(self) -> int:
        return len(self.turns)


@dataclass
class ServiceStats:
    """Aggregate service metrics."""

    n_requests: int
    preparation_s: float
    mean_turnaround_s: float
    p95_turnaround_s: float
    mean_queueing_s: float
    total_energy_j: float
    throughput_rps: float


class LlmService:
    """A shared on-device LLM service over prepared llm.npu engines."""

    def __init__(self, device: Union[str, SocSpec],
                 config: Optional[EngineConfig] = None):
        self.device = get_device(device) if isinstance(device, str) else device
        self.config = config if config is not None else EngineConfig()
        self._engines: Dict[str, LlmNpuEngine] = {}
        self._prepared: Dict[str, float] = {}
        self._requests: List[ServedRequest] = []
        self._clock_s = 0.0
        self._next_id = 0

    # -- engine lifecycle -----------------------------------------------------

    def engine_for(self, model: Union[str, ModelConfig]) -> LlmNpuEngine:
        """The prepared engine for a model; prepares (once) on first use.

        Preparation time advances the service clock — the first request
        for a model pays the warm-up, later ones don't (§3.2's point).
        """
        cfg = get_model_config(model) if isinstance(model, str) else model
        if cfg.name not in self._engines:
            engine = LlmNpuEngine(cfg, self.device, self.config)
            prep = engine.preparation_s()
            self._engines[cfg.name] = engine
            self._prepared[cfg.name] = prep
            self._clock_s += prep
        return self._engines[cfg.name]

    @property
    def loaded_models(self) -> List[str]:
        return sorted(self._engines)

    def preparation_s(self, model: Optional[str] = None) -> float:
        """Preparation time paid so far (for one model or total)."""
        if model is not None:
            try:
                return self._prepared[model]
            except KeyError:
                raise EngineError(f"model {model!r} not prepared") from None
        return sum(self._prepared.values())

    # -- serving ------------------------------------------------------------------

    def submit(self, model: Union[str, ModelConfig], prompt_tokens: int,
               output_tokens: int = 0,
               arrival_s: Optional[float] = None,
               cached_tokens: int = 0) -> ServedRequest:
        """Serve one request FIFO; returns its service record.

        ``arrival_s`` defaults to "now" (the current clock); an arrival in
        the past queues behind whatever is running.  ``cached_tokens``
        reuses an established KV cache (multi-turn conversations).
        """
        engine = self.engine_for(model)
        arrival = self._clock_s if arrival_s is None else float(arrival_s)
        if arrival > self._clock_s:
            self._clock_s = arrival  # idle until the request arrives
        start = self._clock_s
        report = engine.infer(prompt_tokens, output_tokens,
                              cached_tokens=cached_tokens)
        finish = start + report.e2e_latency_s
        self._clock_s = finish
        record = ServedRequest(
            request_id=self._next_id,
            model=engine.model.name,
            arrival_s=arrival,
            start_s=start,
            finish_s=finish,
            report=report,
        )
        self._next_id += 1
        self._requests.append(record)
        return record

    def submit_workload(self, model: Union[str, ModelConfig],
                        samples: List[WorkloadSample],
                        inter_arrival_s: float = 0.0) -> List[ServedRequest]:
        """Serve a batch of workload samples with fixed inter-arrival gaps."""
        if inter_arrival_s < 0:
            raise EngineError("inter_arrival_s must be non-negative")
        # Prepare the engine before the arrival clock starts: workload
        # requests queue behind each other, not behind the one-time
        # preparation (which the service pays at model-load time).
        self.engine_for(model)
        base = self._clock_s
        out = []
        for i, sample in enumerate(samples):
            out.append(self.submit(
                model, sample.prompt_tokens, sample.output_tokens,
                arrival_s=base + i * inter_arrival_s,
            ))
        return out

    def open_chat(self, model: Union[str, ModelConfig]) -> "ChatSession":
        """Start a multi-turn conversation with KV-cache reuse."""
        return ChatSession(self, model)

    # -- reporting ----------------------------------------------------------------

    @property
    def requests(self) -> List[ServedRequest]:
        return list(self._requests)

    def stats(self) -> ServiceStats:
        if not self._requests:
            raise EngineError("no requests served yet")
        turnarounds = np.array([r.turnaround_s for r in self._requests])
        queueing = np.array([r.queueing_s for r in self._requests])
        span = self._clock_s - self._requests[0].arrival_s
        return ServiceStats(
            n_requests=len(self._requests),
            preparation_s=self.preparation_s(),
            mean_turnaround_s=float(turnarounds.mean()),
            p95_turnaround_s=float(np.percentile(turnarounds, 95)),
            mean_queueing_s=float(queueing.mean()),
            total_energy_j=sum(r.report.energy_j for r in self._requests),
            throughput_rps=(len(self._requests) / span if span > 0
                            else float("inf")),
        )
