"""Prefill pipeline: lower chunk plans to tasks, simulate, summarize."""

from __future__ import annotations

from typing import List

from repro.core.dependency import build_task_graph
from repro.core.scheduler import get_policy
from repro.errors import EngineError
from repro.graph.builder import ChunkPlan
from repro.graph.chunk import padded_tokens
from repro.hw.sim import SchedulingPolicy, Simulator
from repro.hw.soc import SocSpec
from repro.core.results import PrefillReport


def run_prefill(
    plans: List[ChunkPlan],
    device: SocSpec,
    prompt_tokens: int,
    float_backend: str = "cpu",
    policy: str = "ooo",
    include_shadow: bool = True,
    extra_latency_s: float = 0.0,
    shadow_backend: str = None,
) -> PrefillReport:
    """Simulate the prefill of ``plans`` and summarize the trace.

    ``extra_latency_s`` is serial time added before execution (e.g. the
    per-prompt graph rebuild a naive engine pays).  ``shadow_backend``
    optionally runs the shadow MatMuls on a third processor.
    """
    if not plans:
        raise EngineError("run_prefill needs at least one chunk plan")
    if prompt_tokens <= 0:
        raise EngineError(f"prompt_tokens must be positive, got {prompt_tokens}")
    tasks = build_task_graph(plans, float_proc=float_backend,
                             include_shadow=include_shadow,
                             shadow_proc=shadow_backend)
    processors = ["npu"]
    for proc in (float_backend, shadow_backend):
        if proc and proc not in processors:
            processors.append(proc)
    simulator = Simulator(processors)
    scheduling = policy if isinstance(policy, SchedulingPolicy) else get_policy(policy)
    trace = simulator.run(tasks, scheduling)
    chunk_len = plans[0].chunk_len
    return PrefillReport(
        prompt_tokens=prompt_tokens,
        padded_tokens=padded_tokens(prompt_tokens, chunk_len)
        if len(plans) * chunk_len >= prompt_tokens else 0,
        n_chunks=len(plans),
        latency_s=trace.makespan_s + extra_latency_s,
        trace=trace,
        npu_busy_s=trace.busy_seconds("npu"),
        float_busy_s=trace.busy_seconds(float_backend),
        npu_bubble_rate=trace.bubble_rate("npu"),
    )
