"""Out-of-order subgraph scheduling (§3.4).

Finding the makespan-optimal order is NP-hard (reducible to TSP), and the
chunk count varies per prompt, so llm.npu uses a microsecond-scale online
heuristic (Eq. 5): when a processor goes idle, among its ready subgraphs
pick the one with the largest *contribution to reducing NPU stalls*::

    C(g) = +sum(T_i for i in S(g))   if g runs on the CPU/GPU
    C(g) = -sum(T_i for i in S(g))   if g runs on the NPU

where ``S(g)`` is the set of **NPU** subgraphs that become ready the
moment ``g`` completes.  Intuition: the NPU is the critical path, so CPU
work that unlocks a lot of NPU work should run first; among NPU choices,
prefer those that *don't* immediately demand more NPU time, keeping the
CPU fed (it will unlock future NPU work during the NPU's busy period).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.hw.sim import SchedulingPolicy, SimContext, Task


def newly_ready_npu_time(task: Task, context: SimContext) -> float:
    """Total duration of NPU tasks that become ready right after ``task``.

    A dependent becomes ready iff ``task`` is its only unfinished
    dependency.
    """
    total = 0.0
    for dep_id in context.dependents.get(task.task_id, ()):
        dependent = context.tasks[dep_id]
        if dependent.proc != "npu":
            continue
        if context.remaining_deps(dep_id) == 1:
            # task is necessarily that remaining dependency
            total += dependent.duration_s
    return total


class OutOfOrderPolicy(SchedulingPolicy):
    """llm.npu's max-C heuristic (Eq. 5).

    Ties on C are broken by *shorter duration first* (then submission
    order): when two candidates unlock the same amount of NPU work, the
    cheaper one frees this processor sooner to unlock the next batch —
    a refinement that keeps the schedule monotone in the shadow-pruning
    rate without departing from Eq. 5's primary criterion.
    """

    name = "llm.npu-ooo"

    def select(self, proc: str, ready: List[Task],
               context: SimContext) -> Task:
        sign = -1.0 if proc == "npu" else 1.0

        def key(task: Task):
            return (sign * newly_ready_npu_time(task, context),
                    -task.duration_s,
                    -context.submit_index[task.task_id])

        return max(ready, key=key)


class NormalizedOooPolicy(SchedulingPolicy):
    """Eq. 5's contribution divided by the candidate's own duration.

    An extension beyond the paper: on a processor that is itself
    contended, unlocking NPU work *per second spent* matters more than
    the absolute amount.  Kept as an ablation point (the scheduler bench
    compares it against the paper's unnormalized heuristic).
    """

    name = "llm.npu-ooo-normalized"

    def select(self, proc: str, ready: List[Task],
               context: SimContext) -> Task:
        sign = -1.0 if proc == "npu" else 1.0

        def rate(task: Task) -> float:
            c = sign * newly_ready_npu_time(task, context)
            return c / max(task.duration_s, 1e-9)

        return max(
            ready,
            key=lambda t: (rate(t), -context.submit_index[t.task_id]),
        )


class LatencyGreedyPolicy(SchedulingPolicy):
    """Shortest-task-first — the "focus on execution latency" strawman the
    paper argues against; kept as an ablation point."""

    name = "latency-greedy"

    def select(self, proc: str, ready: List[Task],
               context: SimContext) -> Task:
        return min(
            ready,
            key=lambda t: (t.duration_s, context.submit_index[t.task_id]),
        )


class ChunkOrderPolicy(SchedulingPolicy):
    """Lowest (chunk, subgraph) first among *ready* tasks — an
    opportunistic in-order variant that still skips over blocked work;
    kept as an ablation point between head-of-line and full OOO."""

    name = "chunk-order"

    def select(self, proc: str, ready: List[Task],
               context: SimContext) -> Task:
        return min(ready, key=lambda t: (t.chunk, t.subgraph,
                                         context.submit_index[t.task_id]))


class HeadOfLinePolicy(SchedulingPolicy):
    """True in-order execution — the naive overlap of Fig. 13(a).

    Each processor owns a command queue filled in program (chunk,
    subgraph) order and must execute it head-first: if the head's
    dependencies are not yet satisfied the processor *idles*, even though
    later entries in its queue are ready.  This is how a naive engine
    built on per-processor driver queues behaves, and it produces the
    ~37% NPU bubble rate the paper measures; out-of-order scheduling
    exists to remove exactly this head-of-line blocking.
    """

    name = "in-order"

    def select(self, proc: str, ready: List[Task],
               context: SimContext):
        pending_here = [
            t for t in context.tasks.values()
            if t.proc == proc and t.task_id not in context.completed
        ]
        # Exclude tasks currently running: a running task is neither
        # completed nor ready; it is this processor's busy slot, and
        # select() is only called when the processor is idle — so every
        # pending task here is either ready or blocked.
        head = min(
            pending_here,
            key=lambda t: context.submit_index[t.task_id],
        )
        ready_ids = {t.task_id for t in ready}
        if head.task_id in ready_ids:
            return head
        return None  # head-of-line blocked: idle until the next event


class RequestQueue:
    """Deterministic request-level queue for the service layer (§3.1).

    The subgraph policies above order work *within* one inference; this
    queue orders whole requests *between* inferences.  Two modes:

    * ``'priority'`` — higher tier priority first, then earlier arrival,
      then lower request id (the multi-tenant scheduler's order);
    * ``'fifo'`` — pure arrival order (the single-queue baseline the
      seed service implemented).

    Entries are any objects exposing ``priority``, ``arrival_s`` and
    ``request_id``; ties always resolve by request id, so the order is a
    pure function of the queue contents — no wall-clock or hash-order
    nondeterminism can leak in.

    With a :class:`~repro.obs.tracer.Tracer` attached, every push/pop
    that carries a sim-clock timestamp becomes an instant event on the
    ``service / scheduler`` track (with the queue depth after the
    operation), making dispatch decisions inspectable on the unified
    timeline.
    """

    def __init__(self, mode: str = "priority", tracer=None):
        if mode not in ("priority", "fifo"):
            from repro.errors import SchedulingError
            raise SchedulingError(
                f"unknown queue mode {mode!r}; use 'priority' or 'fifo'"
            )
        from repro.obs.tracer import as_tracer
        self.mode = mode
        self.tracer = as_tracer(tracer)
        self._heap: List[tuple] = []

    def key(self, entry) -> tuple:
        if self.mode == "priority":
            return (-entry.priority, entry.arrival_s, entry.request_id)
        return (entry.arrival_s, entry.request_id)

    def precedes(self, a, b) -> bool:
        """Would ``a`` be dispatched before ``b``?"""
        return self.key(a) < self.key(b)

    def push(self, entry, now_s: Optional[float] = None) -> None:
        import heapq
        heapq.heappush(self._heap, (self.key(entry), entry))
        if self.tracer.enabled and now_s is not None:
            self.tracer.instant(
                "queue.push", proc="service", thread="scheduler",
                ts_s=now_s, cat="scheduler", mode=self.mode,
                request_id=entry.request_id, depth=len(self._heap),
            )

    def pop(self, now_s: Optional[float] = None):
        import heapq
        entry = heapq.heappop(self._heap)[1]
        if self.tracer.enabled and now_s is not None:
            self.tracer.instant(
                "queue.pop", proc="service", thread="scheduler",
                ts_s=now_s, cat="scheduler", mode=self.mode,
                request_id=entry.request_id, depth=len(self._heap),
            )
        return entry

    def peek(self):
        return self._heap[0][1]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self):
        """Entries in dispatch order (non-destructive)."""
        return (entry for _, entry in sorted(self._heap,
                                             key=lambda kv: kv[0]))


# -- iteration-level batching (continuous batching with chunked prefill) ------


@dataclass(frozen=True)
class BatchConfig:
    """Knobs of the iteration-level step loop (Orca-style batching).

    ``max_batch_tokens`` caps the tokens one sim-clock step may process
    (prefill chunk tokens plus one token per decoding request);
    ``None`` means unbounded.  ``max_concurrency`` caps how many
    requests hold chunk-continuation state at once (``None`` =
    unbounded).  ``prefill_priority`` in [0, 1] is the TTFT-vs-ITL
    policy: the fraction of the post-decode token budget offered to
    prefill chunks while any request is decoding (1.0 = prefill-first,
    minimizes TTFT at the cost of stretched decodes; 0.0 =
    decode-first, minimizes ITL at the cost of delayed first tokens).
    ``kv_budget_bytes`` bounds the summed KV-cache reservations of
    in-flight requests (:func:`repro.graph.memory_plan.kv_cache_bytes`
    accounting); a request only starts when its projected full KV
    footprint fits.

    ``max_batch_tokens=None`` with ``max_concurrency=1`` is the
    degenerate configuration: each step runs one whole request, which
    reproduces the per-request schedule byte-for-byte (the equivalence
    regression the determinism goldens pin down).
    """

    max_batch_tokens: Optional[int] = None
    max_concurrency: Optional[int] = None
    prefill_priority: float = 0.5
    kv_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.errors import SchedulingError
        if (self.max_batch_tokens is not None
                and self.max_batch_tokens <= 0):
            raise SchedulingError("max_batch_tokens must be positive")
        if self.max_concurrency is not None and self.max_concurrency <= 0:
            raise SchedulingError("max_concurrency must be positive")
        if not 0.0 <= self.prefill_priority <= 1.0:
            raise SchedulingError(
                f"prefill_priority must be in [0, 1], "
                f"got {self.prefill_priority!r}"
            )
        if self.kv_budget_bytes is not None and self.kv_budget_bytes <= 0:
            raise SchedulingError("kv_budget_bytes must be positive")

    @property
    def sequential(self) -> bool:
        """True when the step loop degenerates to per-request dispatch."""
        return self.max_batch_tokens is None and self.max_concurrency == 1


@dataclass(frozen=True)
class StepItem:
    """One unit of work inside a step: a prefill chunk or a decode token.

    ``index`` is the chunk index (prefill) or output-token index
    (decode).  ``start_s``/``end_s`` are stamped by the service when the
    item executes; :func:`assemble_step` emits them as 0.
    """

    request_id: int
    kind: str  # 'prefill' | 'decode'
    tokens: int
    cost_s: float
    index: int
    start_s: float = 0.0
    end_s: float = 0.0


@dataclass(frozen=True)
class StepRecord:
    """Audit record of one executed step (the invariant tests read these).

    The telemetry fields after ``kv_reserved_bytes`` snapshot the queue
    state the moment the step was assembled: ``queued_ids`` is the
    waiting queue in dispatch order, ``queue_depths`` the per-tier
    ``(tier, depth)`` pairs (sorted), ``kv_blocked_id`` the head request
    deferred by the KV budget this step (if any), ``concurrency_full``
    whether the start loop stopped at ``max_concurrency``, and
    ``budget_tokens`` / ``kv_budget_bytes`` echo the governing
    :class:`BatchConfig` limits.  All default so existing constructions
    (and the PR-6 invariant suite) are unaffected.
    """

    index: int
    start_s: float
    end_s: float
    items: Tuple["StepItem", ...]
    n_inflight: int
    kv_reserved_bytes: int
    queued_ids: Tuple[int, ...] = ()
    queue_depths: Tuple[Tuple[str, int], ...] = ()
    kv_blocked_id: Optional[int] = None
    concurrency_full: bool = False
    budget_tokens: Optional[int] = None
    kv_budget_bytes: Optional[int] = None

    @property
    def prefill_tokens(self) -> int:
        return sum(i.tokens for i in self.items if i.kind == "prefill")

    @property
    def decode_tokens(self) -> int:
        return sum(i.tokens for i in self.items if i.kind == "decode")

    @property
    def batch_tokens(self) -> int:
        return self.prefill_tokens + self.decode_tokens

    @property
    def queue_depth(self) -> int:
        """Total requests waiting (not yet started) at assembly time."""
        return len(self.queued_ids)

    @property
    def budget_utilization(self) -> Optional[float]:
        """``batch_tokens / budget_tokens`` (None when unbounded)."""
        if not self.budget_tokens:
            return None
        return self.batch_tokens / self.budget_tokens

    @property
    def kv_utilization(self) -> Optional[float]:
        """``kv_reserved_bytes / kv_budget_bytes`` (None when unbounded)."""
        if not self.kv_budget_bytes:
            return None
        return self.kv_reserved_bytes / self.kv_budget_bytes


class ChunkContinuation:
    """Chunk-continuation state of one in-flight request.

    Carried across steps by the step loop: ``cursor`` is the next
    prefill chunk to run (``chunk_lens``/``chunk_costs`` are the
    per-chunk token counts and simulated costs), ``decoded`` counts
    emitted output tokens, and ``kv_reserved_bytes`` is the request's
    full projected KV footprint, reserved for its whole residency (the
    vLLM-style conservative reservation — no mid-flight eviction).

    All fields are per-instance (``__slots__``, no class-level
    defaults), so two interleaved requests can never share cursor or
    residency state.
    """

    __slots__ = (
        "request_id", "priority", "arrival_s", "dispatch_s", "tier_name",
        "chunk_lens", "chunk_costs", "chunk_offset", "token_costs",
        "kv_reserved_bytes", "retries", "retry_held_s",
        "cursor", "decoded", "prefill_end_s", "first_token_s",
    )

    def __init__(self, request_id: int, priority: int, arrival_s: float,
                 dispatch_s: float, tier_name: str,
                 chunk_lens: List[int], chunk_costs: List[float],
                 chunk_offset: int, token_costs: List[float],
                 kv_reserved_bytes: int, retries: int = 0,
                 retry_held_s: float = 0.0):
        from repro.errors import SchedulingError
        if len(chunk_lens) != len(chunk_costs):
            raise SchedulingError(
                f"request {request_id}: {len(chunk_lens)} chunk lengths "
                f"vs {len(chunk_costs)} chunk costs"
            )
        self.request_id = request_id
        self.priority = priority
        self.arrival_s = arrival_s
        self.dispatch_s = dispatch_s
        self.tier_name = tier_name
        self.chunk_lens = list(chunk_lens)
        self.chunk_costs = list(chunk_costs)
        self.chunk_offset = chunk_offset
        self.token_costs = list(token_costs)
        self.kv_reserved_bytes = kv_reserved_bytes
        self.retries = retries
        self.retry_held_s = retry_held_s
        self.cursor = 0
        self.decoded = 0
        self.prefill_end_s: Optional[float] = None
        self.first_token_s: Optional[float] = None

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_lens)

    @property
    def output_tokens(self) -> int:
        return len(self.token_costs)

    @property
    def prefill_done(self) -> bool:
        return self.cursor >= self.n_chunks

    @property
    def done(self) -> bool:
        return self.prefill_done and self.decoded >= self.output_tokens

    @property
    def remaining_cost_s(self) -> float:
        """Engine time this request still needs (admission projections)."""
        return (sum(self.chunk_costs[self.cursor:])
                + sum(self.token_costs[self.decoded:]))

    @property
    def remaining_prefill_s(self) -> float:
        """Engine time of the chunks not yet executed."""
        return sum(self.chunk_costs[self.cursor:])


def assemble_step(inflight: List[ChunkContinuation],
                  max_batch_tokens: Optional[int],
                  prefill_priority: float,
                  rotation: int = 0) -> List[StepItem]:
    """Plan one step's batch from the in-flight continuation states.

    Assembly rules (DESIGN.md §"Step-loop scheduler"):

    1. every decoding request contributes one decode token — unless the
       decoder count alone exceeds the budget, in which case a
       round-robin window (``rotation``) picks which decoders advance;
    2. ``prefill_priority`` times the *full* budget (not the post-decode
       leftover, so the knob's reach does not shrink as decoders
       accumulate) is offered to prefill chunks in queue-key order
       (priority, arrival, id), head-of-line: the first chunk that does
       not fit stops prefill allocation for the step, so later requests
       cannot starve earlier ones.  Any nonzero knob setting schedules
       at least one chunk when one fits the leftover budget — prefill
       can only fully starve at exactly 0.0, and even then only while a
       decode population stands (decoders drain without prefill
       feeding them, so alternation, not starvation).  With no decoders
       the whole leftover goes to prefill regardless of the knob (the
       knob trades TTFT against ITL; with nothing decoding there is no
       trade to make);
    3. items are ordered prefill-first when ``prefill_priority >= 0.5``
       (new requests reach their first token sooner), decode-first
       otherwise (in-flight streams keep their cadence).

    Pure function of its arguments: no clocks, no randomness.
    """
    import math as _math

    def order_key(s: ChunkContinuation):
        return (-s.priority, s.arrival_s, s.request_id)

    decoding = sorted(
        (s for s in inflight if s.prefill_done and not s.done),
        key=order_key)
    prefilling = sorted(
        (s for s in inflight if not s.prefill_done), key=order_key)
    budget = (_math.inf if max_batch_tokens is None
              else float(max_batch_tokens))

    if decoding and len(decoding) > budget:
        window = int(budget)
        offset = rotation % len(decoding)
        decoding = [decoding[(offset + i) % len(decoding)]
                    for i in range(window)]
    decode_items = [
        StepItem(request_id=s.request_id, kind="decode", tokens=1,
                 cost_s=s.token_costs[s.decoded], index=s.decoded)
        for s in decoding
    ]

    avail = budget - len(decode_items)
    if decode_items and prefill_priority < 1.0:
        target = (avail if avail == _math.inf
                  else min(avail, float(_math.floor(
                      budget * prefill_priority))))
    else:
        target = avail
    prefill_items: List[StepItem] = []
    remaining = target
    for s in prefilling:
        cursor = s.cursor
        blocked = False
        while cursor < s.n_chunks:
            tokens = s.chunk_lens[cursor]
            if tokens > remaining:
                # progress guarantee: any nonzero knob setting admits
                # at least one chunk per step (within the hard budget),
                # so a standing decode population cannot starve prefill
                if (prefill_priority > 0.0 and not prefill_items
                        and tokens <= avail):
                    pass
                else:
                    blocked = True
                    break
            prefill_items.append(StepItem(
                request_id=s.request_id, kind="prefill", tokens=tokens,
                cost_s=s.chunk_costs[cursor], index=cursor,
            ))
            remaining -= tokens
            cursor += 1
        if blocked:
            break

    if prefill_priority >= 0.5:
        return prefill_items + decode_items
    return decode_items + prefill_items


def get_policy(name: str) -> SchedulingPolicy:
    """Policy factory: 'ooo', 'in-order', or 'latency-greedy'."""
    from repro.errors import SchedulingError
    from repro.hw.sim import FifoPolicy
    policies = {
        "ooo": OutOfOrderPolicy,
        "ooo-normalized": NormalizedOooPolicy,
        "in-order": HeadOfLinePolicy,
        "chunk-order": ChunkOrderPolicy,
        "fifo": FifoPolicy,
        "latency-greedy": LatencyGreedyPolicy,
    }
    try:
        return policies[name]()
    except KeyError:
        raise SchedulingError(
            f"unknown policy {name!r}; available: {sorted(policies)}"
        ) from None
