"""Out-of-order subgraph scheduling (§3.4).

Finding the makespan-optimal order is NP-hard (reducible to TSP), and the
chunk count varies per prompt, so llm.npu uses a microsecond-scale online
heuristic (Eq. 5): when a processor goes idle, among its ready subgraphs
pick the one with the largest *contribution to reducing NPU stalls*::

    C(g) = +sum(T_i for i in S(g))   if g runs on the CPU/GPU
    C(g) = -sum(T_i for i in S(g))   if g runs on the NPU

where ``S(g)`` is the set of **NPU** subgraphs that become ready the
moment ``g`` completes.  Intuition: the NPU is the critical path, so CPU
work that unlocks a lot of NPU work should run first; among NPU choices,
prefer those that *don't* immediately demand more NPU time, keeping the
CPU fed (it will unlock future NPU work during the NPU's busy period).
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.sim import SchedulingPolicy, SimContext, Task


def newly_ready_npu_time(task: Task, context: SimContext) -> float:
    """Total duration of NPU tasks that become ready right after ``task``.

    A dependent becomes ready iff ``task`` is its only unfinished
    dependency.
    """
    total = 0.0
    for dep_id in context.dependents.get(task.task_id, ()):
        dependent = context.tasks[dep_id]
        if dependent.proc != "npu":
            continue
        if context.remaining_deps(dep_id) == 1:
            # task is necessarily that remaining dependency
            total += dependent.duration_s
    return total


class OutOfOrderPolicy(SchedulingPolicy):
    """llm.npu's max-C heuristic (Eq. 5).

    Ties on C are broken by *shorter duration first* (then submission
    order): when two candidates unlock the same amount of NPU work, the
    cheaper one frees this processor sooner to unlock the next batch —
    a refinement that keeps the schedule monotone in the shadow-pruning
    rate without departing from Eq. 5's primary criterion.
    """

    name = "llm.npu-ooo"

    def select(self, proc: str, ready: List[Task],
               context: SimContext) -> Task:
        sign = -1.0 if proc == "npu" else 1.0

        def key(task: Task):
            return (sign * newly_ready_npu_time(task, context),
                    -task.duration_s,
                    -context.submit_index[task.task_id])

        return max(ready, key=key)


class NormalizedOooPolicy(SchedulingPolicy):
    """Eq. 5's contribution divided by the candidate's own duration.

    An extension beyond the paper: on a processor that is itself
    contended, unlocking NPU work *per second spent* matters more than
    the absolute amount.  Kept as an ablation point (the scheduler bench
    compares it against the paper's unnormalized heuristic).
    """

    name = "llm.npu-ooo-normalized"

    def select(self, proc: str, ready: List[Task],
               context: SimContext) -> Task:
        sign = -1.0 if proc == "npu" else 1.0

        def rate(task: Task) -> float:
            c = sign * newly_ready_npu_time(task, context)
            return c / max(task.duration_s, 1e-9)

        return max(
            ready,
            key=lambda t: (rate(t), -context.submit_index[t.task_id]),
        )


class LatencyGreedyPolicy(SchedulingPolicy):
    """Shortest-task-first — the "focus on execution latency" strawman the
    paper argues against; kept as an ablation point."""

    name = "latency-greedy"

    def select(self, proc: str, ready: List[Task],
               context: SimContext) -> Task:
        return min(
            ready,
            key=lambda t: (t.duration_s, context.submit_index[t.task_id]),
        )


class ChunkOrderPolicy(SchedulingPolicy):
    """Lowest (chunk, subgraph) first among *ready* tasks — an
    opportunistic in-order variant that still skips over blocked work;
    kept as an ablation point between head-of-line and full OOO."""

    name = "chunk-order"

    def select(self, proc: str, ready: List[Task],
               context: SimContext) -> Task:
        return min(ready, key=lambda t: (t.chunk, t.subgraph,
                                         context.submit_index[t.task_id]))


class HeadOfLinePolicy(SchedulingPolicy):
    """True in-order execution — the naive overlap of Fig. 13(a).

    Each processor owns a command queue filled in program (chunk,
    subgraph) order and must execute it head-first: if the head's
    dependencies are not yet satisfied the processor *idles*, even though
    later entries in its queue are ready.  This is how a naive engine
    built on per-processor driver queues behaves, and it produces the
    ~37% NPU bubble rate the paper measures; out-of-order scheduling
    exists to remove exactly this head-of-line blocking.
    """

    name = "in-order"

    def select(self, proc: str, ready: List[Task],
               context: SimContext):
        pending_here = [
            t for t in context.tasks.values()
            if t.proc == proc and t.task_id not in context.completed
        ]
        # Exclude tasks currently running: a running task is neither
        # completed nor ready; it is this processor's busy slot, and
        # select() is only called when the processor is idle — so every
        # pending task here is either ready or blocked.
        head = min(
            pending_here,
            key=lambda t: context.submit_index[t.task_id],
        )
        ready_ids = {t.task_id for t in ready}
        if head.task_id in ready_ids:
            return head
        return None  # head-of-line blocked: idle until the next event


class RequestQueue:
    """Deterministic request-level queue for the service layer (§3.1).

    The subgraph policies above order work *within* one inference; this
    queue orders whole requests *between* inferences.  Two modes:

    * ``'priority'`` — higher tier priority first, then earlier arrival,
      then lower request id (the multi-tenant scheduler's order);
    * ``'fifo'`` — pure arrival order (the single-queue baseline the
      seed service implemented).

    Entries are any objects exposing ``priority``, ``arrival_s`` and
    ``request_id``; ties always resolve by request id, so the order is a
    pure function of the queue contents — no wall-clock or hash-order
    nondeterminism can leak in.

    With a :class:`~repro.obs.tracer.Tracer` attached, every push/pop
    that carries a sim-clock timestamp becomes an instant event on the
    ``service / scheduler`` track (with the queue depth after the
    operation), making dispatch decisions inspectable on the unified
    timeline.
    """

    def __init__(self, mode: str = "priority", tracer=None):
        if mode not in ("priority", "fifo"):
            from repro.errors import SchedulingError
            raise SchedulingError(
                f"unknown queue mode {mode!r}; use 'priority' or 'fifo'"
            )
        from repro.obs.tracer import as_tracer
        self.mode = mode
        self.tracer = as_tracer(tracer)
        self._heap: List[tuple] = []

    def key(self, entry) -> tuple:
        if self.mode == "priority":
            return (-entry.priority, entry.arrival_s, entry.request_id)
        return (entry.arrival_s, entry.request_id)

    def precedes(self, a, b) -> bool:
        """Would ``a`` be dispatched before ``b``?"""
        return self.key(a) < self.key(b)

    def push(self, entry, now_s: Optional[float] = None) -> None:
        import heapq
        heapq.heappush(self._heap, (self.key(entry), entry))
        if self.tracer.enabled and now_s is not None:
            self.tracer.instant(
                "queue.push", proc="service", thread="scheduler",
                ts_s=now_s, cat="scheduler", mode=self.mode,
                request_id=entry.request_id, depth=len(self._heap),
            )

    def pop(self, now_s: Optional[float] = None):
        import heapq
        entry = heapq.heappop(self._heap)[1]
        if self.tracer.enabled and now_s is not None:
            self.tracer.instant(
                "queue.pop", proc="service", thread="scheduler",
                ts_s=now_s, cat="scheduler", mode=self.mode,
                request_id=entry.request_id, depth=len(self._heap),
            )
        return entry

    def peek(self):
        return self._heap[0][1]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self):
        """Entries in dispatch order (non-destructive)."""
        return (entry for _, entry in sorted(self._heap,
                                             key=lambda kv: kv[0]))


def get_policy(name: str) -> SchedulingPolicy:
    """Policy factory: 'ooo', 'in-order', or 'latency-greedy'."""
    from repro.errors import SchedulingError
    from repro.hw.sim import FifoPolicy
    policies = {
        "ooo": OutOfOrderPolicy,
        "ooo-normalized": NormalizedOooPolicy,
        "in-order": HeadOfLinePolicy,
        "chunk-order": ChunkOrderPolicy,
        "fifo": FifoPolicy,
        "latency-greedy": LatencyGreedyPolicy,
    }
    try:
        return policies[name]()
    except KeyError:
        raise SchedulingError(
            f"unknown policy {name!r}; available: {sorted(policies)}"
        ) from None
