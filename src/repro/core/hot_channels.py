"""Hot-channel shadow-weight cache accounting (§3.3).

Shadow execution needs float weight columns in CPU memory space.  Keeping
*all* of them doubles the weight footprint; llm.npu keeps only the "hot"
channels (the <3% of channels producing >80% of outliers, Fig. 11) and
retrieves cold columns from flash on demand, overlapped with the NPU.

This module computes the resident-bytes / expected-miss trade-off used by
the engine's memory and latency accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EngineError
from repro.model.config import ModelConfig


@dataclass(frozen=True)
class HotChannelPolicy:
    """Cache configuration for shadow weights.

    ``hot_fraction`` — fraction of input channels kept resident per linear
    (paper: <3% covers >80% of outliers); ``hit_rate`` — probability an
    outlier channel is in the resident set; ``enabled=False`` models the
    naive keep-everything variant.
    """

    hot_fraction: float = 0.03
    hit_rate: float = 0.8
    enabled: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise EngineError("hot_fraction must be in [0, 1]")
        if not 0.0 <= self.hit_rate <= 1.0:
            raise EngineError("hit_rate must be in [0, 1]")


def shadow_weight_bytes_per_layer(config: ModelConfig,
                                  policy: HotChannelPolicy) -> int:
    """Resident float shadow-weight bytes for one unpruned layer.

    Per linear site, the resident columns are ``hot_fraction * in_features``
    float32 columns of ``out_features`` each (all columns when the cache is
    disabled).
    """
    h, f = config.hidden_size, config.ffn_hidden
    n_up = 2 if config.gated_ffn else 1
    sites = [
        (h, config.q_dim), (h, config.kv_dim), (h, config.kv_dim),
        (config.q_dim, h),
    ] + [(h, f)] * n_up + [(f, h)]
    fraction = policy.hot_fraction if policy.enabled else 1.0
    total = 0
    for in_features, out_features in sites:
        resident_cols = max(1, int(round(in_features * fraction)))
        total += resident_cols * out_features * 4
    return total


def shadow_weight_bytes(config: ModelConfig, n_unpruned_layers: int,
                        policy: HotChannelPolicy) -> int:
    """Total resident shadow-weight bytes across unpruned layers."""
    if n_unpruned_layers < 0:
        raise EngineError("n_unpruned_layers must be non-negative")
    return n_unpruned_layers * shadow_weight_bytes_per_layer(config, policy)


def cache_saving_fraction(config: ModelConfig,
                          policy: HotChannelPolicy) -> float:
    """Memory saved by the hot-channel cache vs keeping all float columns."""
    full = shadow_weight_bytes_per_layer(
        config, HotChannelPolicy(enabled=False)
    )
    cached = shadow_weight_bytes_per_layer(config, policy)
    if full == 0:
        return 0.0
    return 1.0 - cached / full
